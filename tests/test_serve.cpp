// Tests for the serving layer (src/serve): checkpoint save/load round-trips
// bit-identically, the engine's cached + batched path matches a direct
// IrFusionPipeline::analyze() call exactly, the per-design cache hits and
// LRU-evicts under a byte budget, and the robustness paths (degraded
// fallback, timeout, cancellation) resolve with the right status. The
// test_serve_threads4 ctest entry re-runs this suite with IRF_THREADS=4 to
// pin the "bit-identical for any pool width" half of the contract.

#include <gtest/gtest.h>

#include <memory>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "features/extractor.hpp"
#include "irf.hpp"
#include "obs/obs.hpp"

namespace irf::serve {
namespace {

namespace fs = std::filesystem;

/// Per-process temp path: test_serve and test_serve_threads4 run the same
/// binary concurrently under ctest -j and must not clobber each other.
std::string temp_path(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".irf"))
      .string();
}

core::PipelineConfig tiny_pipeline_config() {
  core::PipelineConfig pc;
  pc.image_size = 32;
  pc.rough_iterations = 3;
  pc.base_channels = 4;
  pc.epochs = 2;
  pc.seed = 5;
  return pc;
}

/// One tiny design set + one fitted pipeline + one saved checkpoint, shared
/// across the suite (training is the expensive part).
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScaleConfig cfg = make_scale_config(Scale::kCi);
    cfg.image_size = 32;
    cfg.num_fake_designs = 3;
    cfg.num_real_designs = 2;
    cfg.epochs = 2;
    cfg.base_channels = 4;
    cfg.seed = 321;
    set_ = std::make_unique<train::DesignSet>(train::build_design_set(cfg));
    pipeline_ = std::make_unique<core::IrFusionPipeline>(tiny_pipeline_config());
    pipeline_->fit(set_->train);
    checkpoint_path_ = std::make_unique<std::string>(temp_path("serve_fixture_model"));
    save_checkpoint(*pipeline_, *checkpoint_path_);
  }
  static void TearDownTestSuite() {
    fs::remove(*checkpoint_path_);
    checkpoint_path_.reset();
    pipeline_.reset();
    set_.reset();
  }

  static const pg::PgDesign& test_design() { return *set_->test.front().design; }

  static std::unique_ptr<train::DesignSet> set_;
  static std::unique_ptr<core::IrFusionPipeline> pipeline_;
  static std::unique_ptr<std::string> checkpoint_path_;
};

std::unique_ptr<train::DesignSet> ServeFixture::set_;
std::unique_ptr<core::IrFusionPipeline> ServeFixture::pipeline_;
std::unique_ptr<std::string> ServeFixture::checkpoint_path_;

// --- design content hash ---------------------------------------------------

TEST(DesignContentHash, NameIndependentAndContentSensitive) {
  Rng rng(7);
  pg::PgDesign a = pg::generate_fake_design(32, rng, "alpha");
  pg::PgDesign b = a;
  b.name = "beta";  // re-parsed copies of one deck must share a cache entry
  EXPECT_EQ(design_content_hash(a), design_content_hash(b));

  Rng rng2(8);
  pg::PgDesign c = pg::generate_fake_design(32, rng2, "gamma");
  EXPECT_NE(design_content_hash(a), design_content_hash(c));

  pg::PgDesign d = a;
  d.vdd += 0.1;
  EXPECT_NE(design_content_hash(a), design_content_hash(d));
}

// --- checkpoint format -----------------------------------------------------

TEST_F(ServeFixture, CheckpointRoundTripIsBitIdentical) {
  core::IrFusionPipeline restored = load_checkpoint(*checkpoint_path_);
  EXPECT_TRUE(restored.is_fitted());
  EXPECT_EQ(restored.config().image_size, pipeline_->config().image_size);
  EXPECT_EQ(restored.config().seed, pipeline_->config().seed);
  EXPECT_EQ(restored.view(), pipeline_->view());

  const GridF direct = pipeline_->analyze(test_design());
  const GridF reloaded = restored.analyze(test_design());
  ASSERT_EQ(direct.data().size(), reloaded.data().size());
  EXPECT_EQ(direct.data(), reloaded.data());  // exact, not approximate
}

TEST_F(ServeFixture, CheckpointSurvivesASecondGeneration) {
  // save(load(save(p))) must also be stable — no drift through re-encoding.
  core::IrFusionPipeline restored = load_checkpoint(*checkpoint_path_);
  const std::string second = temp_path("serve_second_gen");
  save_checkpoint(restored, second);
  core::IrFusionPipeline restored2 = load_checkpoint(second);
  fs::remove(second);
  EXPECT_EQ(pipeline_->analyze(test_design()).data(),
            restored2.analyze(test_design()).data());
}

TEST_F(ServeFixture, CheckpointDetectsCorruption) {
  const std::string path = temp_path("serve_corrupt");
  fs::copy_file(*checkpoint_path_, path, fs::copy_options::overwrite_existing);
  const auto size = fs::file_size(path);
  {
    // Flip one payload byte; the header checksum must catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  EXPECT_THROW(load_checkpoint(path), ParseError);
  fs::remove(path);
}

TEST_F(ServeFixture, CheckpointDetectsTruncation) {
  const std::string path = temp_path("serve_truncated");
  std::ifstream in(*checkpoint_path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(load_checkpoint(path), ParseError);
  fs::remove(path);
}

TEST_F(ServeFixture, LegacyV1CheckpointStillLoads) {
  const std::string path = temp_path("serve_legacy_v1");
  pipeline_->save(path);  // pre-redesign format
  core::IrFusionPipeline restored = load_checkpoint(path);
  fs::remove(path);
  EXPECT_EQ(pipeline_->analyze(test_design()).data(),
            restored.analyze(test_design()).data());
}

TEST_F(ServeFixture, IsCheckpointFileProbes) {
  EXPECT_TRUE(is_checkpoint_file(*checkpoint_path_));
  EXPECT_FALSE(is_checkpoint_file("/nonexistent/model.irf"));
  const std::string path = temp_path("serve_not_a_checkpoint");
  std::ofstream(path) << "definitely not a checkpoint";
  EXPECT_FALSE(is_checkpoint_file(path));
  fs::remove(path);
}

TEST(Checkpoint, RejectsUnfittedPipeline) {
  core::IrFusionPipeline pipeline(tiny_pipeline_config());
  EXPECT_THROW(save_checkpoint(pipeline, temp_path("serve_unfitted")), ConfigError);
}

// --- config validation (satellite: validate at construction) ---------------

TEST(PipelineConfigValidation, RejectsBadTrainingParams) {
  core::PipelineConfig pc = tiny_pipeline_config();
  pc.epochs = 0;
  EXPECT_THROW(core::IrFusionPipeline{pc}, ConfigError);
  pc = tiny_pipeline_config();
  pc.learning_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(core::IrFusionPipeline{pc}, ConfigError);
  pc = tiny_pipeline_config();
  pc.learning_rate = -1e-3;
  EXPECT_THROW(core::IrFusionPipeline{pc}, ConfigError);
  pc = tiny_pipeline_config();
  pc.base_channels = 0;
  EXPECT_THROW(core::IrFusionPipeline{pc}, ConfigError);
}

TEST(EngineOptionsValidation, RejectsBadOptions) {
  EngineOptions opts;
  opts.max_batch = 0;
  EXPECT_THROW(Engine{opts}, ConfigError);
  opts = EngineOptions{};
  opts.queue_capacity = 0;
  EXPECT_THROW(Engine{opts}, ConfigError);
  opts = EngineOptions{};
  opts.fallback_image_size = 4;
  EXPECT_THROW(Engine{opts}, ConfigError);
}

// --- engine: correctness ---------------------------------------------------

TEST_F(ServeFixture, EngineMatchesDirectAnalyzeAcrossABatch) {
  EngineOptions opts;
  opts.start_paused = true;  // force all requests into one dispatch batch
  // Generated fake designs of one size share a topology, so incremental
  // re-analysis would engage between them; this test pins the cold path's
  // bit-identity contract, so warm starts are off.
  opts.enable_warm_start = false;
  auto engine = Engine::from_checkpoint(*checkpoint_path_, opts);
  ASSERT_TRUE(engine->has_model());

  std::vector<Engine::Ticket> tickets;
  std::vector<const pg::PgDesign*> designs;
  for (const train::PreparedDesign& p : set_->train) designs.push_back(p.design.get());
  designs.push_back(&test_design());
  for (const pg::PgDesign* d : designs) {
    AnalysisRequest request;
    request.design = std::make_shared<pg::PgDesign>(*d);
    tickets.push_back(engine->submit(std::move(request)));
  }
  EXPECT_EQ(engine->queue_depth(), static_cast<int>(designs.size()));
  engine->resume();

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    AnalysisResult r = tickets[i].result.get();
    ASSERT_TRUE(r.ok()) << status_name(r.status) << ": " << r.error;
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.batch_size, static_cast<int>(designs.size()));
    EXPECT_EQ(r.design_hash, design_content_hash(*designs[i]));
    // The batched forward must be bit-identical to the serial pipeline.
    const GridF direct = pipeline_->analyze(*designs[i]);
    EXPECT_EQ(r.ir_drop.data(), direct.data()) << designs[i]->name;
  }
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.submitted, designs.size());
  EXPECT_EQ(stats.served_ok, designs.size());
  EXPECT_EQ(stats.batches, 1u);
}

TEST_F(ServeFixture, EngineCachesPerDesignState) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  AnalysisResult first = engine->analyze(test_design());
  AnalysisResult second = engine->analyze(test_design());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.ir_drop.data(), second.ir_drop.data());
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1);
  EXPECT_GT(stats.cache_bytes, 0u);

  engine->clear_cache();
  EXPECT_EQ(engine->stats().cache_entries, 0);
  AnalysisResult third = engine->analyze(test_design());
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.ir_drop.data(), first.ir_drop.data());
}

TEST_F(ServeFixture, EngineEvictsLeastRecentlyUsedUnderBudget) {
  EngineOptions opts;
  opts.cache_budget_bytes = 1;  // every second distinct design must evict
  opts.enable_warm_start = false;  // pin the cold rebuild's bit-identity
  auto engine = Engine::from_checkpoint(*checkpoint_path_, opts);
  ASSERT_GE(set_->train.size(), 2u);
  const pg::PgDesign& a = *set_->train[0].design;
  const pg::PgDesign& b = *set_->train[1].design;
  EXPECT_TRUE(engine->analyze(a).ok());
  EXPECT_TRUE(engine->analyze(b).ok());
  const EngineStats stats = engine->stats();
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 1);  // only the oversized newest entry stays
  // The evicted design is rebuilt, and identically so.
  AnalysisResult again = engine->analyze(a);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(again.ir_drop.data(), pipeline_->analyze(a).data());
}

// --- engine: incremental re-analysis (warm start) --------------------------

/// Copy of `base` with every current source scaled: the canonical bounded
/// delta — identical topology, new current map.
pg::PgDesign scaled_current_copy(const pg::PgDesign& base, double factor) {
  pg::PgDesign d = base;
  d.netlist.scale_current_sources(factor);
  return d;
}

TEST(DesignTopologyHash, InvariantToValuesSensitiveToStructure) {
  Rng rng(7);
  pg::PgDesign a = pg::generate_fake_design(32, rng, "alpha");
  pg::PgDesign scaled = a;
  scaled.netlist.scale_current_sources(3.0);
  scaled.netlist.scale_voltage_sources(1.1);
  scaled.netlist.set_resistor_ohms(0, a.netlist.resistors()[0].ohms * 2.0);
  EXPECT_EQ(design_topology_hash(a), design_topology_hash(scaled));
  EXPECT_NE(design_content_hash(a), design_content_hash(scaled));

  pg::PgDesign grown = a;
  grown.netlist.add_resistor("Rextra", 0, 1, 1.0);
  EXPECT_NE(design_topology_hash(a), design_topology_hash(grown));

  // Two generated fakes of one size differ only in source values — the warm
  // path's canonical candidate pair.
  Rng rng2(8);
  pg::PgDesign c = pg::generate_fake_design(32, rng2, "gamma");
  EXPECT_EQ(design_topology_hash(a), design_topology_hash(c));
}

TEST_F(ServeFixture, WarmStartServesCurrentOnlyDelta) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());

  const pg::PgDesign eco = scaled_current_copy(base, 1.07);
  AnalysisResult r = engine->analyze(eco);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.cache_hit);
  EXPECT_TRUE(r.warm_start);
  EXPECT_EQ(r.ir_drop.data().size(), std::size_t{32 * 32});
  EngineStats stats = engine->stats();
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.warm_fallbacks, 0u);
  EXPECT_EQ(stats.cache_misses, 2u);

  // The warm entry is a first-class cache entry: the same deck now hits,
  // bit-identically.
  AnalysisResult again = engine->analyze(eco);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.ir_drop.data(), r.ir_drop.data());
  // And the base entry survived donating its solver: exact hits still work.
  AnalysisResult base_again = engine->analyze(base);
  EXPECT_TRUE(base_again.cache_hit);
  stats = engine->stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_entries, 2);
}

TEST_F(ServeFixture, WarmStartServesSupplyOnlyDelta) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());
  pg::PgDesign corner = base;
  corner.vdd *= 1.05;
  corner.netlist.scale_voltage_sources(1.05);
  AnalysisResult r = engine->analyze(corner);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.warm_start);
  EXPECT_EQ(engine->stats().warm_hits, 1u);
}

TEST_F(ServeFixture, WarmStartAcceptsBoundedResistorEdits) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);  // max_stamp_edits = 8
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());
  pg::PgDesign eco = base;
  for (std::size_t i = 0; i < 3; ++i) {
    eco.netlist.set_resistor_ohms(i, base.netlist.resistors()[i].ohms * 2.0);
  }
  AnalysisResult r = engine->analyze(eco);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.warm_start);
  EXPECT_EQ(engine->stats().warm_hits, 1u);
}

TEST_F(ServeFixture, WarmStartFallsBackWhenDeltaTooLarge) {
  EngineOptions opts;
  opts.max_stamp_edits = 2;
  auto engine = Engine::from_checkpoint(*checkpoint_path_, opts);
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());
  pg::PgDesign eco = base;
  for (std::size_t i = 0; i < 3; ++i) {
    eco.netlist.set_resistor_ohms(i, base.netlist.resistors()[i].ohms * 1.5);
  }
  AnalysisResult r = engine->analyze(eco);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.warm_start);
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.warm_hits, 0u);
  EXPECT_EQ(stats.warm_fallbacks, 1u);
  // The rejected candidate fell back to the cold path, whose bit-identity
  // contract holds.
  EXPECT_EQ(r.ir_drop.data(), pipeline_->analyze(eco).data());
}

TEST_F(ServeFixture, WarmStartIgnoresTopologyChanges) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());
  pg::PgDesign grown = base;
  grown.netlist.add_resistor("Rextra", 0, 1, 1.0);
  AnalysisResult r = engine->analyze(grown);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.warm_start);
  // A different topology hash is never even a candidate — no fallback counted.
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.warm_hits, 0u);
  EXPECT_EQ(stats.warm_fallbacks, 0u);
  EXPECT_EQ(r.ir_drop.data(), pipeline_->analyze(grown).data());
}

TEST_F(ServeFixture, WarmStartCanBeDisabled) {
  EngineOptions opts;
  opts.enable_warm_start = false;
  auto engine = Engine::from_checkpoint(*checkpoint_path_, opts);
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());
  AnalysisResult r = engine->analyze(scaled_current_copy(base, 1.07));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.warm_start);
  EXPECT_EQ(engine->stats().warm_hits, 0u);
}

TEST_F(ServeFixture, WarmBuildSurvivesEvictionPressure) {
  EngineOptions opts;
  opts.cache_budget_bytes = 1;  // every insertion evicts the older entry
  auto engine = Engine::from_checkpoint(*checkpoint_path_, opts);
  const pg::PgDesign& base = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(base).ok());
  const pg::PgDesign eco = scaled_current_copy(base, 1.1);
  AnalysisResult r = engine->analyze(eco);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.warm_start);  // the base was still cached when the miss hit
  EngineStats stats = engine->stats();
  EXPECT_EQ(stats.cache_entries, 1);  // budget keeps only the newest entry
  EXPECT_GE(stats.cache_evictions, 1u);
  // The survivor serves content hits; the evicted base comes back through a
  // warm build seeded by the survivor's solver (the handoff chains).
  EXPECT_TRUE(engine->analyze(eco).cache_hit);
  AnalysisResult rebuilt = engine->analyze(base);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt.cache_hit);
  EXPECT_TRUE(rebuilt.warm_start);
}

TEST_F(ServeFixture, CacheBytesAccountAllRetainedState) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  const pg::PgDesign& d = *set_->train[0].design;
  ASSERT_TRUE(engine->analyze(d).ok());
  // The cached entry retains the full MNA + AMG solver, the rough solution
  // and both feature stacks. The byte accounting must therefore be at least
  // the solver's own footprint — the old grids-only estimate sat far below
  // this floor and let the LRU budget overshoot.
  pg::PgSolver reference(d);
  const EngineStats stats = engine->stats();
  EXPECT_GE(stats.cache_bytes, reference.memory_bytes());
}

// --- engine: robustness ----------------------------------------------------

TEST(EngineDegraded, ModelLessEngineServesRoughMap) {
  Rng rng(11);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "degraded");
  EngineOptions opts;
  opts.fallback_image_size = 32;
  opts.fallback_rough_iterations = 2;
  Engine engine(opts);
  EXPECT_FALSE(engine.has_model());
  AnalysisResult r = engine.analyze(design);
  EXPECT_EQ(r.status, ResultStatus::kDegraded);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.has_map());
  EXPECT_FALSE(r.ok());
  // Degraded output IS the rough numerical map at the fallback budget.
  pg::PgSolver solver(design);
  const GridF expected = features::label_map(design, solver.solve_rough(2), 32);
  EXPECT_EQ(r.ir_drop.data(), expected.data());
  EXPECT_EQ(r.ir_drop.data(), r.rough.data());
  EXPECT_EQ(engine.stats().degraded, 1u);
}

TEST(EngineDegraded, RequestMayRefuseDegradedService) {
  Rng rng(12);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "strict"));
  Engine engine{EngineOptions{}};
  AnalysisRequest request;
  request.design = design;
  request.allow_degraded = false;
  AnalysisResult r = engine.submit(std::move(request)).result.get();
  EXPECT_EQ(r.status, ResultStatus::kFailed);
  EXPECT_FALSE(r.has_map());
  EXPECT_NE(r.error.find("no model"), std::string::npos);
}

TEST(EngineDegraded, EngineWideSwitchDisablesFallback) {
  Rng rng(13);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "nofallback");
  EngineOptions opts;
  opts.allow_degraded = false;
  Engine engine(opts);
  AnalysisResult r = engine.analyze(design);
  EXPECT_EQ(r.status, ResultStatus::kFailed);
}

TEST(EngineRobustness, QueuedRequestTimesOut) {
  Rng rng(14);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "timeout"));
  EngineOptions opts;
  opts.start_paused = true;  // deadlines keep ticking while paused
  Engine engine(opts);
  AnalysisRequest request;
  request.design = design;
  request.timeout_seconds = 0.01;
  Engine::Ticket ticket = engine.submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.resume();
  AnalysisResult r = ticket.result.get();
  EXPECT_EQ(r.status, ResultStatus::kTimedOut);
  EXPECT_FALSE(r.has_map());
  EXPECT_EQ(engine.stats().timeouts, 1u);
}

TEST(EngineRobustness, QueuedRequestCanBeCancelled) {
  Rng rng(15);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "cancel"));
  EngineOptions opts;
  opts.start_paused = true;
  Engine engine(opts);
  AnalysisRequest request;
  request.design = design;
  Engine::Ticket ticket = engine.submit(std::move(request));
  EXPECT_TRUE(engine.cancel(ticket.id));
  EXPECT_FALSE(engine.cancel(ticket.id + 999));  // unknown id
  engine.resume();
  AnalysisResult r = ticket.result.get();
  EXPECT_EQ(r.status, ResultStatus::kCancelled);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(EngineRobustness, ShutdownResolvesQueuedRequestsAsCancelled) {
  Rng rng(16);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "shutdown"));
  std::future<AnalysisResult> orphan;
  {
    EngineOptions opts;
    opts.start_paused = true;
    Engine engine(opts);
    AnalysisRequest request;
    request.design = design;
    orphan = engine.submit(std::move(request)).result;
  }  // dtor: paused queue drains as cancelled, never hangs a waiter
  AnalysisResult r = orphan.get();
  EXPECT_EQ(r.status, ResultStatus::kCancelled);
}

TEST(EngineRobustness, TrySubmitReportsBackpressure) {
  Rng rng(17);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "backpressure"));
  EngineOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 1;
  Engine engine(opts);
  AnalysisRequest request;
  request.design = design;
  std::optional<Engine::Ticket> first = engine.try_submit(request);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(engine.try_submit(request).has_value());  // queue full
  EXPECT_TRUE(engine.cancel(first->id));
  engine.resume();
  first->result.get();
}

TEST(EngineRobustness, NullDesignRejectedAtSubmit) {
  Engine engine{EngineOptions{}};
  EXPECT_THROW(engine.submit(AnalysisRequest{}), ConfigError);
  EXPECT_THROW(engine.try_submit(AnalysisRequest{}), ConfigError);
}

// --- request-scoped telemetry ----------------------------------------------

/// RAII guard: enables metrics + tracing with clean buffers, restores the
/// defaults on exit so the other suites stay telemetry-free.
struct TelemetryOn {
  TelemetryOn() {
    obs::MetricsRegistry::instance().clear();
    obs::clear_trace_events();
    obs::set_metrics_enabled(true);
    obs::set_trace_enabled(true);
  }
  ~TelemetryOn() {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    obs::MetricsRegistry::instance().clear();
    obs::clear_trace_events();
  }
};

double span_arg(const obs::TraceEvent& e, const std::string& key, double missing) {
  for (const auto& [k, v] : e.args) {
    if (k == key) return v;
  }
  return missing;
}

TEST_F(ServeFixture, RequestSpansShareOneReqId) {
  TelemetryOn telemetry;
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  AnalysisResult r = engine->analyze(test_design());
  ASSERT_TRUE(r.ok()) << r.error;

  EXPECT_GT(r.req_id, 0u);
  EXPECT_GT(r.submit_unix_seconds, 0.0);
  EXPECT_GE(r.queue_depth_at_admission, 1);
  EXPECT_GT(r.solver_iterations, 0);
  EXPECT_GT(r.solver_final_residual, 0.0);
  EXPECT_GT(r.stages.total_seconds, 0.0);
  EXPECT_GT(r.stages.queue_wait_seconds, 0.0);
  EXPECT_GT(r.stages.solve_seconds, 0.0);
  EXPECT_GT(r.stages.inference_seconds, 0.0);
  EXPECT_GE(r.stages.respond_seconds, 0.0);

  // Every per-request span of this request — queue wait, the numerical
  // stage, its inference share and the end-to-end envelope — carries the
  // result's req_id as a span arg.
  const std::vector<obs::TraceEvent> events = obs::trace_events();
  const double id = static_cast<double>(r.req_id);
  for (const char* name :
       {"serve_queue_wait", "serve_numerical", "serve_infer_share", "serve_request"}) {
    bool found = false;
    for (const obs::TraceEvent& e : events) {
      if (e.name == name && span_arg(e, "req_id", -1.0) == id) found = true;
    }
    EXPECT_TRUE(found) << "no span named " << name << " with req_id " << r.req_id;
  }
  // The envelope span also carries admission-time queue depth and batch.
  for (const obs::TraceEvent& e : events) {
    if (e.name == "serve_request") {
      EXPECT_GE(span_arg(e, "queue_depth", -1.0), 1.0);
      EXPECT_GE(span_arg(e, "batch", -1.0), 1.0);
    }
  }
}

TEST_F(ServeFixture, ReqIdsAreMonotonicAcrossRequests) {
  auto engine = Engine::from_checkpoint(*checkpoint_path_);
  AnalysisResult a = engine->analyze(test_design());
  AnalysisResult b = engine->analyze(test_design());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.req_id, a.req_id);
  EXPECT_TRUE(b.cache_hit);
  // A cache hit reports the cached solve's convergence telemetry.
  EXPECT_EQ(b.solver_iterations, a.solver_iterations);
  EXPECT_DOUBLE_EQ(b.solver_final_residual, a.solver_final_residual);
}

TEST(EngineFlight, DegradedRequestDumpsParseableFlightRecord) {
  const std::string dump = temp_path("serve_flight_degraded");
  Rng rng(21);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "flight");
  EngineOptions opts;
  opts.fallback_image_size = 32;
  opts.fallback_rough_iterations = 2;
  opts.flight_dump_path = dump;
  Engine engine(opts);  // model-less: every request degrades
  AnalysisResult r = engine.analyze(design);
  EXPECT_EQ(r.status, ResultStatus::kDegraded);

  // The auto-dump landed and is valid JSON with the degradation on record.
  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "flight dump missing: " << dump;
  std::stringstream buf;
  buf << f.rdbuf();
  const obs::JsonValue doc = obs::parse_json(buf.str());
  const obs::JsonValue& body = doc.at("flight_recorder");
  EXPECT_GT(body.at("capacity").number, 0.0);
  bool saw_submit = false, saw_degraded = false;
  for (const obs::JsonValue& rec : body.at("records").array) {
    if (rec.at("event").string == "submit") saw_submit = true;
    if (rec.at("event").string == "degraded" &&
        rec.at("req_id").number == static_cast<double>(r.req_id)) {
      saw_degraded = true;
    }
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_degraded);
  fs::remove(dump);

  // On-demand dump still works and parses.
  const obs::JsonValue live = obs::parse_json(engine.dump_flight_recorder());
  EXPECT_FALSE(live.at("flight_recorder").at("records").array.empty());
}

TEST(EngineFlight, DeadlineMissDumpsFlightRecord) {
  const std::string dump = temp_path("serve_flight_deadline");
  Rng rng(22);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "flight_deadline"));
  EngineOptions opts;
  opts.start_paused = true;
  opts.flight_dump_path = dump;
  Engine engine(opts);
  AnalysisRequest request;
  request.design = design;
  request.timeout_seconds = 0.01;
  Engine::Ticket ticket = engine.submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.resume();
  AnalysisResult r = ticket.result.get();
  ASSERT_EQ(r.status, ResultStatus::kTimedOut);
  EXPECT_GT(r.req_id, 0u);

  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "flight dump missing: " << dump;
  std::stringstream buf;
  buf << f.rdbuf();
  const obs::JsonValue doc = obs::parse_json(buf.str());
  bool saw_miss = false;
  for (const obs::JsonValue& rec : doc.at("flight_recorder").at("records").array) {
    if (rec.at("event").string == "deadline_missed" &&
        rec.at("req_id").number == static_cast<double>(r.req_id)) {
      saw_miss = true;
    }
  }
  EXPECT_TRUE(saw_miss);
  fs::remove(dump);
}

TEST_F(ServeFixture, TelemetryOnOffIsBitIdentical) {
  // The whole observability layer is read-only: enabling metrics + tracing
  // (and the residual-curve capture) must not move a single output bit.
  GridF with_telemetry, without_telemetry;
  {
    TelemetryOn telemetry;
    obs::set_residual_curve_capture(true);
    auto engine = Engine::from_checkpoint(*checkpoint_path_);
    AnalysisResult r = engine->analyze(test_design());
    ASSERT_TRUE(r.ok()) << r.error;
    with_telemetry = r.ir_drop;
    obs::set_residual_curve_capture(false);
  }
  {
    auto engine = Engine::from_checkpoint(*checkpoint_path_);
    AnalysisResult r = engine->analyze(test_design());
    ASSERT_TRUE(r.ok()) << r.error;
    without_telemetry = r.ir_drop;
  }
  EXPECT_EQ(with_telemetry.data(), without_telemetry.data());
}

TEST(EngineFlight, RecorderCapacityIsValidated) {
  EngineOptions opts;
  opts.flight_recorder_capacity = 0;
  EXPECT_THROW(Engine{opts}, ConfigError);
}

TEST(EngineCheckpoint, MissingFileDegradesOrThrows) {
  auto engine = Engine::from_checkpoint("/nonexistent/model.irf");
  EXPECT_FALSE(engine->has_model());
  EXPECT_EQ(engine->pipeline(), nullptr);
  EngineOptions strict;
  strict.allow_degraded = false;
  EXPECT_THROW(Engine::from_checkpoint("/nonexistent/model.irf", strict), Error);
}

// --- submit-path regressions (admission, stats accounting, deadlines) ------

TEST(EngineAdmission, RejectsBadPriorityOptions) {
  EngineOptions opts;
  opts.priority_quotas[0] = -1;
  EXPECT_THROW(Engine{opts}, ConfigError);
  opts = EngineOptions{};
  opts.debug_batch_delay_seconds = -0.1;
  EXPECT_THROW(Engine{opts}, ConfigError);
}

TEST(EngineAdmission, TrySubmitNeverBlocksUnderContention) {
  // Regression: try_submit used to check capacity under the lock, drop it,
  // and delegate to submit() — a racing producer could take the last slot
  // in the gap and leave try_submit blocked on space forever. Admission is
  // now decided inside one critical section: with a full, paused queue,
  // every concurrent try_submit must come back promptly, and exactly the
  // queue's capacity may succeed.
  Rng rng(41);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "toctou"));
  EngineOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 1;
  Engine engine(opts);

  constexpr int kProducers = 8;
  std::vector<std::future<bool>> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.push_back(std::async(std::launch::async, [&engine, design] {
      AnalysisRequest request;
      request.design = design;
      return engine.try_submit(std::move(request)).has_value();
    }));
  }
  int admitted = 0;
  for (std::future<bool>& f : producers) {
    // A blocked try_submit shows up as a timeout here instead of hanging
    // the whole suite.
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)), std::future_status::ready)
        << "try_submit blocked";
    admitted += f.get() ? 1 : 0;
  }
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(engine.queue_depth(), 1);
  engine.resume();  // drain the one admitted request through the dtor
}

TEST(EngineAdmission, ShedsLowestPriorityFirstUnderSaturation) {
  Rng rng(42);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "shed"));
  EngineOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 2;
  Engine engine(opts);

  const auto submit_with = [&](Priority p) {
    AnalysisRequest request;
    request.design = design;
    request.priority = p;
    return engine.submit(std::move(request));
  };
  Engine::Ticket batch_t = submit_with(Priority::kBatch);
  Engine::Ticket normal_t = submit_with(Priority::kNormal);
  EXPECT_EQ(engine.queue_depth(), 2);

  // A saturated queue sheds the oldest request of the LOWEST class that is
  // strictly below the arrival — first the batch request, then the normal.
  Engine::Ticket first_i = submit_with(Priority::kInteractive);
  AnalysisResult shed_batch = batch_t.result.get();
  EXPECT_EQ(shed_batch.status, ResultStatus::kShed);
  EXPECT_FALSE(shed_batch.has_map());
  Engine::Ticket second_i = submit_with(Priority::kInteractive);
  EXPECT_EQ(normal_t.result.get().status, ResultStatus::kShed);

  // With only interactive work queued, an equal-or-lower arrival has no
  // victim: plain backpressure applies, exactly as before priorities.
  AnalysisRequest request;
  request.design = design;
  request.priority = Priority::kNormal;
  EXPECT_FALSE(engine.try_submit(std::move(request)).has_value());

  engine.resume();
  EXPECT_EQ(first_i.result.get().status, ResultStatus::kDegraded);
  EXPECT_EQ(second_i.result.get().status, ResultStatus::kDegraded);

  // Shed results are terminal results: counted as completed exactly once,
  // and the submit that got shed still counts as submitted (the old
  // shutdown-path bug let completed overtake submitted).
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_LE(s.completed, s.submitted);
  EXPECT_EQ(s.served_ok + s.degraded + s.timeouts + s.cancelled + s.failures +
                s.shed,
            s.completed);
}

TEST(EngineAdmission, ClassQuotaRejectsAtAdmission) {
  Rng rng(43);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "quota"));
  EngineOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 8;
  opts.priority_quotas[static_cast<int>(Priority::kInteractive)] = 1;
  Engine engine(opts);

  AnalysisRequest request;
  request.design = design;
  request.priority = Priority::kInteractive;
  Engine::Ticket admitted = engine.submit(request);
  // Quota exhausted: both submit flavours resolve the ticket as kShed
  // immediately instead of blocking or stealing shared capacity.
  AnalysisResult over = engine.submit(request).result.get();
  EXPECT_EQ(over.status, ResultStatus::kShed);
  EXPECT_NE(over.error.find("quota"), std::string::npos);
  std::optional<Engine::Ticket> try_over = engine.try_submit(request);
  ASSERT_TRUE(try_over.has_value());
  EXPECT_EQ(try_over->result.get().status, ResultStatus::kShed);

  engine.resume();
  EXPECT_EQ(admitted.result.get().status, ResultStatus::kDegraded);
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, 3u);  // quota rejections still count as submitted
  EXPECT_EQ(s.shed, 2u);
  EXPECT_LE(s.completed, s.submitted);
}

TEST(EngineStats, TimedOutResultCarriesDispatchBatchSize) {
  // Regression: a timed-out request used to leave batch_size at 0; every
  // terminal result now reports the dispatch batch it rode in.
  Rng rng(44);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "batchsize"));
  EngineOptions opts;
  opts.start_paused = true;
  Engine engine(opts);
  AnalysisRequest normal;
  normal.design = design;
  Engine::Ticket served = engine.submit(std::move(normal));
  AnalysisRequest doomed;
  doomed.design = design;
  doomed.timeout_seconds = 0.01;
  Engine::Ticket timed_out = engine.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.resume();

  AnalysisResult late = timed_out.result.get();
  ASSERT_EQ(late.status, ResultStatus::kTimedOut);
  EXPECT_EQ(late.batch_size, 2);
  AnalysisResult ok = served.result.get();
  ASSERT_EQ(ok.status, ResultStatus::kDegraded);
  EXPECT_EQ(ok.batch_size, 1);  // surviving cohort after the timeout
}

TEST(EngineDeadline, CompletedWorkWinsAfterLastDeadlineCheck) {
  // A deadline that expires after the final pre-inference check does NOT
  // discard the finished map — the result is served with deadline_exceeded
  // set (docs/API.md "Deadlines"). debug_batch_delay_seconds makes the
  // "expired inside stage B" window deterministic.
  Rng rng(45);
  auto design = std::make_shared<pg::PgDesign>(
      pg::generate_fake_design(32, rng, "overrun"));
  EngineOptions opts;
  opts.fallback_image_size = 32;
  opts.fallback_rough_iterations = 2;
  opts.debug_batch_delay_seconds = 0.4;
  Engine engine(opts);

  AnalysisRequest request;
  request.design = design;
  request.timeout_seconds = 0.2;
  AnalysisResult r = engine.submit(std::move(request)).result.get();
  EXPECT_EQ(r.status, ResultStatus::kDegraded);  // served, not kTimedOut
  EXPECT_TRUE(r.has_map());
  EXPECT_TRUE(r.deadline_exceeded);

  AnalysisRequest relaxed;
  relaxed.design = design;
  AnalysisResult r2 = engine.submit(std::move(relaxed)).result.get();
  EXPECT_EQ(r2.status, ResultStatus::kDegraded);
  EXPECT_FALSE(r2.deadline_exceeded);
}

// --- router: sharded serving ------------------------------------------------

/// Distinct-topology designs (random blockages perturb the grid), so the
/// router actually spreads them: fake designs of one size all share a
/// topology hash and would collapse onto a single shard.
std::vector<std::shared_ptr<pg::PgDesign>> distinct_topology_designs(int n) {
  std::vector<std::shared_ptr<pg::PgDesign>> designs;
  std::vector<std::uint64_t> seen;
  for (int seed = 0; static_cast<int>(designs.size()) < n && seed < 200; ++seed) {
    Rng rng(500 + seed);
    auto d = std::make_shared<pg::PgDesign>(
        pg::generate_real_design(32, rng, "router_" + std::to_string(seed)));
    const std::uint64_t h = design_topology_hash(*d);
    if (std::find(seen.begin(), seen.end(), h) != seen.end()) continue;
    seen.push_back(h);
    designs.push_back(std::move(d));
  }
  return designs;
}

TEST(RouterValidation, RejectsBadOptions) {
  RouterOptions opts;
  opts.num_shards = 0;
  EXPECT_THROW(Router{opts}, ConfigError);
  opts = RouterOptions{};
  opts.steal_min_depth = 0;
  EXPECT_THROW(Router{opts}, ConfigError);
}

TEST_F(ServeFixture, RouterShardAffinityAndBitIdentity) {
  RouterOptions ropts;
  ropts.num_shards = 2;
  ropts.engine.enable_warm_start = false;
  auto router = Router::from_checkpoint(*checkpoint_path_, ropts);
  ASSERT_TRUE(router->has_model());
  EXPECT_EQ(router->num_shards(), 2);

  EngineOptions eopts;
  eopts.enable_warm_start = false;
  auto reference = Engine::from_checkpoint(*checkpoint_path_, eopts);

  const auto designs = distinct_topology_designs(4);
  ASSERT_GE(designs.size(), 2u);
  for (const auto& d : designs) {
    const int expected_shard = router->shard_for(*d);
    AnalysisResult first = router->analyze(*d);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.shard, expected_shard);
    // Re-submission sticks to the same shard and hits its LRU entry.
    AnalysisResult again = router->analyze(*d);
    EXPECT_EQ(again.shard, expected_shard);
    EXPECT_TRUE(again.cache_hit);
    // Any shard serves bit-identically to a standalone engine: the clones
    // carry the same weights.
    AnalysisResult direct = reference->analyze(*d);
    EXPECT_EQ(first.ir_drop.data(), direct.ir_drop.data());
  }
  // Ticket ids stay globally unique across shards (strided per shard).
  const RouterStats rs = router->router_stats();
  EXPECT_EQ(rs.total.submitted, 2u * designs.size());
  EXPECT_GE(rs.total.cache_hits, designs.size());
}

TEST_F(ServeFixture, RouterStealsFromSaturatedSiblingBitIdentically) {
  RouterOptions ropts;
  ropts.num_shards = 2;
  ropts.engine.enable_warm_start = false;
  ropts.steal_min_depth = 2;
  auto router = Router::from_checkpoint(*checkpoint_path_, ropts);

  const auto designs = distinct_topology_designs(4);
  ASSERT_GE(designs.size(), 1u);
  const auto& design = designs.front();
  const int owner = router->shard_for(*design);
  const int thief = 1 - owner;

  EngineOptions eopts;
  eopts.enable_warm_start = false;
  auto reference = Engine::from_checkpoint(*checkpoint_path_, eopts);
  const GridF expected = reference->analyze(*design).ir_drop;

  // Freeze the owning shard so its queue backs up; the idle sibling must
  // steal the backlog and serve it — bit-identically, since every shard
  // holds the same weights.
  router->shard(owner).pause();
  std::vector<Engine::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    AnalysisRequest request;
    request.design = design;
    tickets.push_back(router->submit(std::move(request)));
  }
  for (Engine::Ticket& t : tickets) {
    AnalysisResult r = t.result.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.shard, thief);  // the owner never ran
    EXPECT_EQ(r.ir_drop.data(), expected.data());
  }
  router->shard(owner).resume();

  const RouterStats rs = router->router_stats();
  EXPECT_GE(rs.steals, 1u);
  EXPECT_EQ(rs.stolen_requests, 6u);
  // Per-shard asymmetry is expected (the owner admitted, the thief
  // completed); the aggregate invariant must still hold.
  EXPECT_EQ(rs.shards[static_cast<std::size_t>(owner)].submitted, 6u);
  EXPECT_GE(rs.shards[static_cast<std::size_t>(thief)].completed, 6u);
  EXPECT_LE(rs.total.completed, rs.total.submitted);
}

TEST(RouterStats, AggregateMatchesPerShardBreakdown) {
  RouterOptions ropts;
  ropts.num_shards = 2;
  ropts.enable_stealing = false;  // keep per-shard attribution exact
  Router router(ropts);  // model-less: every request degrades, cheaply

  const auto designs = distinct_topology_designs(4);
  std::vector<Engine::Ticket> tickets;
  for (int round = 0; round < 3; ++round) {
    for (const auto& d : designs) {
      AnalysisRequest request;
      request.design = d;
      tickets.push_back(router.submit(std::move(request)));
    }
  }
  std::vector<std::uint64_t> ids;
  for (Engine::Ticket& t : tickets) {
    EXPECT_EQ(t.result.get().status, ResultStatus::kDegraded);
    ids.push_back(t.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "ticket ids must be globally unique across shards";

  const RouterStats rs = router.router_stats();
  ASSERT_EQ(rs.shards.size(), 2u);
  EngineStats sum;
  for (const EngineStats& s : rs.shards) {
    sum.submitted += s.submitted;
    sum.completed += s.completed;
    sum.degraded += s.degraded;
    sum.cache_hits += s.cache_hits;
    sum.cache_misses += s.cache_misses;
  }
  EXPECT_EQ(rs.total.submitted, sum.submitted);
  EXPECT_EQ(rs.total.completed, sum.completed);
  EXPECT_EQ(rs.total.degraded, sum.degraded);
  EXPECT_EQ(rs.total.cache_hits, sum.cache_hits);
  EXPECT_EQ(rs.total.cache_misses, sum.cache_misses);
  EXPECT_EQ(rs.total.submitted, tickets.size());
  EXPECT_EQ(rs.total.completed, tickets.size());
  EXPECT_LE(rs.total.completed, rs.total.submitted);
  // The plain stats() view is the aggregate, and queue_depth() sums shards.
  EXPECT_EQ(router.stats().completed, rs.total.completed);
  EXPECT_EQ(router.queue_depth(), 0);
}

TEST(RouterRobustness, CancelFindsRequestAfterSteal) {
  RouterOptions ropts;
  ropts.num_shards = 2;
  ropts.engine.start_paused = true;
  ropts.enable_stealing = false;
  Router router(ropts);
  const auto designs = distinct_topology_designs(2);
  ASSERT_GE(designs.size(), 1u);
  AnalysisRequest request;
  request.design = designs.front();
  Engine::Ticket ticket = router.submit(std::move(request));
  EXPECT_TRUE(router.cancel(ticket.id));
  EXPECT_FALSE(router.cancel(ticket.id + 12345));
  router.resume();
  EXPECT_EQ(ticket.result.get().status, ResultStatus::kCancelled);
}

}  // namespace
}  // namespace irf::serve
