// Tests for the irf::simd kernel layer: SELL-C-sigma layout construction,
// the bit-identity contract (fp64 kernels agree bit-for-bit with the scalar
// reference no matter which ISA tier runs or whether the gate is on), value
// refills after a rebind, and the CsrMatrix cache plumbing around it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"
#include "simd/sell.hpp"
#include "simd/simd.hpp"

namespace irf::simd {
namespace {

using linalg::CsrMatrix;
using linalg::TripletBuilder;
using linalg::Vec;

/// Restores the process-global kernel gate on scope exit so one test's
/// set_enabled() can never leak into the rest of the suite.
class GateGuard {
 public:
  GateGuard() : was_(enabled()) {}
  ~GateGuard() { set_enabled(was_); }

 private:
  bool was_;
};

/// Random square sparse SPD-ish matrix with irregular row lengths: a banded
/// skeleton plus scattered long-range entries, so slices get distinct
/// min/max widths and the sigma-sort permutation actually reorders rows.
CsrMatrix random_sparse(int n, Rng& rng) {
  TripletBuilder b(n, n);
  for (int i = 0; i < n; ++i) {
    b.add(i, i, 4.0 + std::abs(rng.normal()));
    for (int d = 1; d <= 2; ++d) {
      if (i + d < n && rng.uniform() < 0.7) b.add(i, i + d, -rng.uniform());
      if (i - d >= 0 && rng.uniform() < 0.7) b.add(i, i - d, -rng.uniform());
    }
    // A few rows get a long tail so slice_min < slice_width somewhere.
    if (rng.uniform() < 0.15) {
      const int j = static_cast<int>(rng.uniform() * n) % n;
      b.add(i, j, 0.1 * rng.normal());
    }
  }
  return CsrMatrix::from_triplets(b);
}

/// Scalar reference SpMV in CSR order — the rounding every layout must hit.
Vec reference_multiply(const CsrMatrix& a, const Vec& x) {
  Vec y(static_cast<std::size_t>(a.rows()));
  for (int i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (int k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      s += a.values()[k] * x[a.col_idx()[k]];
    }
    y[i] = s;
  }
  return y;
}

bool bit_equal(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(Sell, BuildIsAFaithfulPermutedCopy) {
  Rng rng(11);
  const CsrMatrix a = random_sparse(100, rng);
  const SellMatrix<double> s =
      build_sell<double>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                         a.values().data());
  ASSERT_EQ(s.rows, a.rows());
  ASSERT_EQ(s.num_slices, (a.rows() + kLanes - 1) / kLanes);
  ASSERT_EQ(s.slice_off.size(), static_cast<std::size_t>(s.num_slices) + 1);

  // perm is a permutation of [0, rows).
  std::vector<int> seen(a.rows(), 0);
  for (int p : s.perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, a.rows());
    ++seen[p];
  }
  for (int c : seen) EXPECT_EQ(c, 1);

  // Every row's entries appear lane-interleaved in CSR order, and each
  // slice's min/max widths bound its rows.
  for (int sl = 0; sl < s.num_slices; ++sl) {
    const int base = sl * kLanes;
    const int active = std::min(kLanes, a.rows() - base);
    for (int l = 0; l < active; ++l) {
      const int row = s.perm[base + l];
      const int len = a.row_ptr()[row + 1] - a.row_ptr()[row];
      ASSERT_EQ(len, s.row_len[base + l]);
      EXPECT_LE(s.slice_min[sl], len);
      EXPECT_GE(s.slice_width[sl], len);
      for (int j = 0; j < len; ++j) {
        const std::int64_t k = s.slice_off[sl] + static_cast<std::int64_t>(j) * kLanes + l;
        EXPECT_EQ(s.cols[k], a.col_idx()[a.row_ptr()[row] + j]);
        EXPECT_EQ(s.vals[k], a.values()[a.row_ptr()[row] + j]);
      }
      // Padding beyond the row is zero (never read for stored lanes, but a
      // zero pad keeps the layout safe to scan).
      for (int j = len; j < s.slice_width[sl]; ++j) {
        const std::int64_t k = s.slice_off[sl] + static_cast<std::int64_t>(j) * kLanes + l;
        EXPECT_EQ(s.vals[k], 0.0);
      }
    }
  }
}

TEST(Sell, SpmvBitIdenticalToCsrReferenceAcrossShapes) {
  Rng rng(29);
  for (int n : {1, 5, 8, 9, 17, 64, 200, 1041}) {
    const CsrMatrix a = random_sparse(n, rng);
    const SellMatrix<double> s =
        build_sell<double>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                           a.values().data());
    Vec x(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.normal();
    const Vec want = reference_multiply(a, x);
    Vec got(static_cast<std::size_t>(n), 0.0);
    sell_spmv(s.view(), x.data(), got.data(), 0, s.num_slices);
    EXPECT_TRUE(bit_equal(want, got)) << "n=" << n;
  }
}

TEST(Sell, RefillValuesMatchesFreshBuild) {
  Rng rng(37);
  const CsrMatrix a = random_sparse(120, rng);
  SellMatrix<double> s = build_sell<double>(
      a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data());

  std::vector<double> scaled = a.values();
  for (double& v : scaled) v *= 1.75;
  refill_sell_values(s, a.row_ptr().data(), scaled.data());

  const SellMatrix<double> fresh = build_sell<double>(
      a.rows(), a.row_ptr().data(), a.col_idx().data(), scaled.data());
  ASSERT_EQ(s.vals.size(), fresh.vals.size());
  EXPECT_EQ(0, std::memcmp(s.vals.data(), fresh.vals.data(),
                           s.vals.size() * sizeof(double)));
  // Structure untouched by a refill.
  EXPECT_EQ(s.cols, fresh.cols);
  EXPECT_EQ(s.perm, fresh.perm);
}

TEST(Simd, MultiplyBitIdenticalWithGateOnAndOff) {
  GateGuard guard;
  Rng rng(43);
  const CsrMatrix a = random_sparse(513, rng);
  Vec x(static_cast<std::size_t>(a.rows()));
  for (double& v : x) v = rng.normal();

  Vec y_off, y_on;
  set_enabled(false);
  a.multiply(x, y_off);
  set_enabled(true);
  a.multiply(x, y_on);
  EXPECT_TRUE(bit_equal(y_off, y_on));
  EXPECT_TRUE(bit_equal(y_off, reference_multiply(a, x)));
}

TEST(Simd, DotBitIdenticalWithGateOnAndOff) {
  GateGuard guard;
  Rng rng(47);
  for (std::int64_t n : {0, 1, 7, 8, 9, 1000, 4097}) {
    Vec a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
    for (double& v : a) v = rng.normal();
    for (double& v : b) v = rng.normal();
    set_enabled(true);
    const double d_on = linalg::dot(a, b);
    set_enabled(false);
    const double d_off = linalg::dot(a, b);
    EXPECT_EQ(0, std::memcmp(&d_on, &d_off, sizeof(double))) << "n=" << n;
  }
}

TEST(Simd, ElementwiseKernelsMatchScalarLoops) {
  GateGuard guard;
  set_enabled(true);
  Rng rng(53);
  const std::int64_t n = 1037;
  Vec a(n), b(n), diag(n);
  for (double& v : a) v = rng.normal();
  for (double& v : b) v = rng.normal();
  for (double& v : diag) v = 1.0 + std::abs(rng.normal());

  Vec y = b;
  axpy(0.37, a.data(), y.data(), n);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(y[i], b[i] + 0.37 * a[i]);

  y = b;
  xpby(a.data(), -0.25, y.data(), n);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(y[i], a[i] + -0.25 * b[i]);

  y = a;
  scale(y.data(), 3.0, n);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(y[i], a[i] * 3.0);

  Vec out(n);
  subtract(a.data(), b.data(), out.data(), n);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(out[i], a[i] - b[i]);

  y = b;
  jacobi_update(a.data(), diag.data(), 0.7, y.data(), n);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(y[i], b[i] + 0.7 * a[i] / diag[i]);
}

TEST(Simd, WidenNarrowRoundTrip) {
  const std::int64_t n = 300;
  std::vector<float> f(n), f2(n);
  std::vector<double> d(n);
  Rng rng(59);
  for (float& v : f) v = static_cast<float>(rng.normal());
  widen(f.data(), d.data(), n);
  narrow(d.data(), f2.data(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(d[i], static_cast<double>(f[i]));
    EXPECT_EQ(f2[i], f[i]);
  }
}

TEST(Simd, Fp32SpmvTracksFp64) {
  Rng rng(61);
  const CsrMatrix a = random_sparse(256, rng);
  const SellMatrix<float> s = build_sell<float>(
      a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data());
  std::vector<float> x(static_cast<std::size_t>(a.rows())), y(x.size(), 0.0f);
  Vec xd(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xd[i] = rng.normal();
    x[i] = static_cast<float>(xd[i]);
  }
  sell_spmv(s.view(), x.data(), y.data(), 0, s.num_slices);
  const Vec want = reference_multiply(a, xd);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], want[i], 1e-4 * (1.0 + std::abs(want[i])));
  }
}

TEST(Simd, TierReportingFollowsGate) {
  GateGuard guard;
  set_enabled(false);
  EXPECT_EQ(active_tier(), IsaTier::kBaseline);
  set_enabled(true);
  EXPECT_EQ(active_tier(), best_tier());
  EXPECT_STRNE(tier_name(best_tier()), "");
}

TEST(CsrCache, MutableValuesInvalidatesSellMirror) {
  GateGuard guard;
  set_enabled(true);
  Rng rng(67);
  CsrMatrix a = random_sparse(300, rng);
  Vec x(static_cast<std::size_t>(a.rows()));
  for (double& v : x) v = rng.normal();

  Vec y_before;
  a.multiply(x, y_before);  // builds + caches the SELL mirror

  for (double& v : a.mutable_values()) v *= 2.0;  // must drop the mirror
  Vec y_after;
  a.multiply(x, y_after);
  EXPECT_TRUE(bit_equal(y_after, reference_multiply(a, x)));
  for (std::size_t i = 0; i < y_after.size(); ++i) {
    EXPECT_EQ(y_after[i], 2.0 * y_before[i]);
  }
}

TEST(CsrCache, MemoryBytesCountsTheSellMirror) {
  GateGuard guard;
  set_enabled(true);
  Rng rng(71);
  const CsrMatrix a = random_sparse(400, rng);
  const std::size_t before = a.memory_bytes();
  Vec x(static_cast<std::size_t>(a.rows()), 1.0), y;
  a.multiply(x, y);  // builds the lazy SELL cache
  EXPECT_GT(a.memory_bytes(), before);
}

TEST(CsrCache, CopyAndMoveDropCaches) {
  GateGuard guard;
  set_enabled(true);
  Rng rng(73);
  CsrMatrix a = random_sparse(200, rng);
  Vec x(static_cast<std::size_t>(a.rows()), 1.0), y;
  a.multiply(x, y);  // warm the cache

  CsrMatrix copy = a;  // caches are not copied, results still identical
  Vec y_copy;
  copy.multiply(x, y_copy);
  EXPECT_TRUE(bit_equal(y, y_copy));

  CsrMatrix moved = std::move(copy);
  Vec y_moved;
  moved.multiply(x, y_moved);
  EXPECT_TRUE(bit_equal(y, y_moved));
}

}  // namespace
}  // namespace irf::simd
