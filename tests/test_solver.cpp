// Tests for irf::solver: CG/PCG drivers, aggregation, AMG hierarchy, K-cycle
// and the AMG-PCG facade — including the convergence properties the paper's
// numerical stage relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "solver/aggregation.hpp"
#include "solver/amg.hpp"
#include "solver/amg_pcg.hpp"
#include "solver/cg.hpp"

namespace irf::solver {
namespace {

using linalg::CsrMatrix;
using linalg::TripletBuilder;
using linalg::Vec;

/// 2-D 5-point Laplacian on an n x n grid, Dirichlet boundary (SPD) — the
/// discrete structure of a single-layer power grid.
CsrMatrix laplacian_2d(int n) {
  TripletBuilder b(n * n, n * n);
  auto id = [n](int y, int x) { return y * n + x; };
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      b.add(id(y, x), id(y, x), 4.0);
      if (x + 1 < n) {
        b.add(id(y, x), id(y, x + 1), -1.0);
        b.add(id(y, x + 1), id(y, x), -1.0);
      }
      if (y + 1 < n) {
        b.add(id(y, x), id(y + 1, x), -1.0);
        b.add(id(y + 1, x), id(y, x), -1.0);
      }
    }
  }
  return CsrMatrix::from_triplets(b);
}

Vec random_vec(int n, Rng& rng) {
  Vec v(static_cast<std::size_t>(n));
  for (double& x : v) x = rng.normal();
  return v;
}

TEST(Cg, SolvesSmallSpdSystem) {
  CsrMatrix a = laplacian_2d(6);
  Rng rng(1);
  Vec x_true = random_vec(a.rows(), rng);
  Vec b = a.multiply(x_true);
  SolveOptions opt;
  opt.rel_tolerance = 1e-12;
  SolveResult r = conjugate_gradient(a, b, opt);
  EXPECT_TRUE(r.converged);
  for (int i = 0; i < a.rows(); ++i) EXPECT_NEAR(r.x[i], x_true[i], 1e-8);
}

TEST(Cg, ZeroRhsIsZeroSolution) {
  CsrMatrix a = laplacian_2d(4);
  Vec b(static_cast<std::size_t>(a.rows()), 0.0);
  SolveResult r = conjugate_gradient(a, b);
  EXPECT_TRUE(r.converged);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, ResidualHistoryDecreasesOverall) {
  CsrMatrix a = laplacian_2d(8);
  Rng rng(2);
  Vec b = random_vec(a.rows(), rng);
  SolveOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveResult r = conjugate_gradient(a, b, opt);
  ASSERT_GE(r.residual_history.size(), 2u);
  EXPECT_LT(r.residual_history.back(), r.residual_history.front());
}

TEST(Cg, RespectsIterationBudget) {
  CsrMatrix a = laplacian_2d(10);
  Rng rng(3);
  Vec b = random_vec(a.rows(), rng);
  SolveOptions opt;
  opt.max_iterations = 3;
  opt.rel_tolerance = 0.0;
  SolveResult r = conjugate_gradient(a, b, opt);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.x.size(), static_cast<std::size_t>(a.rows()));
}

TEST(Cg, NonSpdThrows) {
  TripletBuilder tb(2, 2);
  tb.add(0, 0, -1.0);
  tb.add(1, 1, -1.0);
  CsrMatrix a = CsrMatrix::from_triplets(tb);
  Vec b{1.0, 1.0};
  EXPECT_THROW(conjugate_gradient(a, b), NumericError);
}

TEST(Pcg, JacobiPreconditionerHelpsScaledSystem) {
  // Badly scaled diagonal: plain CG struggles, Jacobi-PCG equilibrates.
  const int n = 50;
  TripletBuilder tb(n, n);
  for (int i = 0; i < n; ++i) {
    const double d = (i % 2 == 0) ? 1.0 : 1e4;
    tb.add(i, i, 2.0 * d);
    if (i + 1 < n) {
      tb.add(i, i + 1, -0.5);
      tb.add(i + 1, i, -0.5);
    }
  }
  CsrMatrix a = CsrMatrix::from_triplets(tb);
  Rng rng(4);
  Vec b = random_vec(n, rng);
  SolveOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveResult plain = conjugate_gradient(a, b, opt);
  JacobiPreconditioner jacobi(a);
  SolveResult pre = preconditioned_cg(a, b, jacobi, opt);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(Aggregation, CoversAllNodes) {
  CsrMatrix a = laplacian_2d(7);
  Aggregation agg = pairwise_aggregate(a);
  ASSERT_EQ(agg.aggregate_of.size(), static_cast<std::size_t>(a.rows()));
  std::vector<int> count(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (int g : agg.aggregate_of) {
    ASSERT_GE(g, 0);
    ASSERT_LT(g, agg.num_aggregates);
    ++count[static_cast<std::size_t>(g)];
  }
  for (int c : count) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 2);  // pairwise: aggregates of at most two nodes
  }
  EXPECT_LT(agg.num_aggregates, a.rows());
}

TEST(Aggregation, DoublePairwiseCoarsensHarder) {
  CsrMatrix a = laplacian_2d(8);
  Aggregation once = pairwise_aggregate(a);
  Aggregation twice = double_pairwise_aggregate(a);
  EXPECT_LT(twice.num_aggregates, once.num_aggregates);
  std::vector<int> count(static_cast<std::size_t>(twice.num_aggregates), 0);
  for (int g : twice.aggregate_of) ++count[static_cast<std::size_t>(g)];
  for (int c : count) EXPECT_LE(c, 4);  // at most 4 per coarse unknown
}

TEST(Aggregation, GalerkinPreservesSymmetryAndRowSums) {
  CsrMatrix a = laplacian_2d(6);
  Aggregation agg = double_pairwise_aggregate(a);
  CsrMatrix ac = galerkin_coarse_matrix(a, agg);
  EXPECT_EQ(ac.rows(), agg.num_aggregates);
  EXPECT_TRUE(ac.is_symmetric(1e-10));
  // Galerkin with piecewise-constant P preserves the total row sum.
  double fine_sum = 0.0, coarse_sum = 0.0;
  for (double s : a.row_sums()) fine_sum += s;
  for (double s : ac.row_sums()) coarse_sum += s;
  EXPECT_NEAR(fine_sum, coarse_sum, 1e-9);
}

TEST(Aggregation, RestrictProlongAdjoint) {
  // <P^T r, e> == <r, P e> for all r, e.
  CsrMatrix a = laplacian_2d(5);
  Aggregation agg = pairwise_aggregate(a);
  Rng rng(5);
  Vec r = random_vec(a.rows(), rng);
  Vec e = random_vec(agg.num_aggregates, rng);
  Vec rc;
  restrict_to_coarse(agg, r, rc);
  Vec pe(static_cast<std::size_t>(a.rows()), 0.0);
  prolongate_add(agg, e, pe);
  EXPECT_NEAR(linalg::dot(rc, e), linalg::dot(r, pe), 1e-10);
}

TEST(Amg, HierarchyShrinks) {
  CsrMatrix a = laplacian_2d(16);
  AmgOptions opt;
  opt.coarsest_size = 16;
  AmgHierarchy amg(a, opt);
  ASSERT_GE(amg.num_levels(), 2);
  for (int l = 1; l < amg.num_levels(); ++l) {
    EXPECT_LT(amg.level(l).matrix.rows(), amg.level(l - 1).matrix.rows());
    EXPECT_TRUE(amg.level(l).matrix.is_symmetric(1e-9));
  }
  EXPECT_LE(amg.level(amg.num_levels() - 1).matrix.rows(), 4 * opt.coarsest_size);
  EXPECT_GE(amg.grid_complexity(), 1.0);
  EXPECT_LT(amg.grid_complexity(), 2.5);
  EXPECT_LT(amg.operator_complexity(), 3.0);
}

TEST(Amg, CycleReducesError) {
  CsrMatrix a = laplacian_2d(12);
  AmgHierarchy amg(a, {});
  Rng rng(6);
  Vec b = random_vec(a.rows(), rng);
  Vec z;
  amg.apply(b, z);
  // One cycle should reduce the residual substantially vs x = 0.
  Vec r = linalg::subtract(b, a.multiply(z));
  EXPECT_LT(linalg::norm2(r), 0.5 * linalg::norm2(b));
}

class AmgPcgGridSize : public ::testing::TestWithParam<int> {};

TEST_P(AmgPcgGridSize, ConvergesFastOnLaplacians) {
  const int n = GetParam();
  CsrMatrix a = laplacian_2d(n);
  Rng rng(7);
  Vec x_true = random_vec(a.rows(), rng);
  Vec b = a.multiply(x_true);
  AmgPcgSolver solver(a);
  SolveResult r = solver.solve_golden(b, 1e-10);
  EXPECT_TRUE(r.converged);
  // Mesh-independent-ish convergence: iteration count stays modest.
  EXPECT_LE(r.iterations, 30);
  for (int i = 0; i < a.rows(); ++i) EXPECT_NEAR(r.x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AmgPcgGridSize, ::testing::Values(8, 16, 24, 32));

TEST(AmgPcg, BeatsPlainCgOnIterations) {
  CsrMatrix a = laplacian_2d(24);
  Rng rng(8);
  Vec b = random_vec(a.rows(), rng);
  SolveOptions opt;
  opt.rel_tolerance = 1e-8;
  SolveResult plain = conjugate_gradient(a, b, opt);
  AmgPcgSolver solver(a);
  SolveResult amg = solver.solve(b, opt);
  EXPECT_TRUE(amg.converged);
  EXPECT_LT(amg.iterations, plain.iterations / 2);
}

TEST(AmgPcg, RoughSolutionImprovesWithIterations) {
  CsrMatrix a = laplacian_2d(16);
  Rng rng(9);
  Vec x_true = random_vec(a.rows(), rng);
  Vec b = a.multiply(x_true);
  AmgPcgSolver solver(a);
  double prev_err = 1e300;
  for (int k : {1, 2, 4, 8}) {
    SolveResult r = solver.solve_rough(b, k);
    EXPECT_EQ(r.iterations, k);
    double err = linalg::norm2(linalg::subtract(r.x, x_true));
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(AmgPcg, VCycleAlsoConverges) {
  CsrMatrix a = laplacian_2d(16);
  Rng rng(10);
  Vec b = random_vec(a.rows(), rng);
  AmgOptions opt;
  opt.cycle = CycleType::kV;
  AmgPcgSolver solver(a, opt);
  SolveResult r = solver.solve_golden(b, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(AmgPcg, SetupTimeRecorded) {
  CsrMatrix a = laplacian_2d(12);
  AmgPcgSolver solver(a);
  EXPECT_GE(solver.setup_seconds(), 0.0);
  Vec b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveResult r = solver.solve_rough(b, 2);
  EXPECT_GE(r.solve_seconds, 0.0);
  EXPECT_EQ(r.setup_seconds, solver.setup_seconds());
}

double mean_abs_error(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

TEST(MixedPrecision, MatchesFp64GoldenAccuracy) {
  // The fp32 preconditioner must not cost accuracy: scored against a tighter
  // fp64 reference, the mixed solve's golden MAE stays within 1e-8 of the
  // fp64 solve's (the same contract the roofline bench enforces).
  CsrMatrix a = laplacian_2d(32);
  Rng rng(21);
  Vec x_true = random_vec(a.rows(), rng);
  Vec b = a.multiply(x_true);
  AmgPcgSolver solver(a);

  SolveResult ref = solver.solve_golden(b, 1e-13, 4000);
  SolveOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveResult r64 = solver.solve(b, opt);
  EXPECT_FALSE(solver.has_fp32_mirror());

  opt.precision = PrecisionMode::kMixed;
  SolveResult rmx = solver.solve(b, opt);
  EXPECT_TRUE(solver.has_fp32_mirror());
  EXPECT_TRUE(r64.converged);
  EXPECT_TRUE(rmx.converged);
  EXPECT_NEAR(mean_abs_error(rmx.x, ref.x), mean_abs_error(r64.x, ref.x), 1e-8);
}

TEST(MixedPrecision, Fp64PathUnchangedByMixedSolves) {
  // PrecisionMode is per-solve: a mixed solve in between must not perturb
  // the bit-exact fp64 result (golden solves and warm-start seeding rely on
  // this).
  CsrMatrix a = laplacian_2d(24);
  Rng rng(22);
  Vec b = random_vec(a.rows(), rng);
  AmgPcgSolver solver(a);
  SolveOptions opt;
  opt.rel_tolerance = 1e-9;
  SolveResult first = solver.solve(b, opt);

  SolveOptions mixed = opt;
  mixed.precision = PrecisionMode::kMixed;
  (void)solver.solve(b, mixed);

  SolveResult again = solver.solve(b, opt);
  ASSERT_EQ(first.x.size(), again.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i) {
    EXPECT_EQ(first.x[i], again.x[i]);
  }
}

TEST(MixedPrecision, MirrorCountedInMemoryBytes) {
  CsrMatrix a = laplacian_2d(24);
  AmgPcgSolver solver(a);
  const std::size_t before = solver.memory_bytes();
  Vec b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions opt;
  opt.precision = PrecisionMode::kMixed;
  opt.rel_tolerance = 1e-8;
  (void)solver.solve(b, opt);
  EXPECT_TRUE(solver.has_fp32_mirror());
  EXPECT_GT(solver.memory_bytes(), before);
}

TEST(MixedPrecision, RebindRebuildsSellAndFp32Mirror) {
  // Regression for the rebind path: update_matrix_values must invalidate the
  // cached SELL layout AND the fp32 mirror, so a post-rebind solve (SIMD on)
  // converges against the NEW values, and a post-rebind mixed solve
  // preconditions with the new conductances rather than stale ones.
  CsrMatrix a = laplacian_2d(20);
  Rng rng(23);
  Vec x_true = random_vec(a.rows(), rng);
  AmgPcgSolver solver(a);
  SolveOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveOptions mixed = opt;
  mixed.precision = PrecisionMode::kMixed;
  (void)solver.solve(a.multiply(x_true), mixed);  // build SELL + fp32 mirror
  ASSERT_TRUE(solver.has_fp32_mirror());

  // Same sparsity, scaled values: a valid rebind.
  CsrMatrix a2 = a;
  for (double& v : a2.mutable_values()) v *= 2.5;
  solver.update_matrix_values(a2);
  EXPECT_FALSE(solver.has_fp32_mirror());  // dropped, rebuilt on demand

  Vec b2 = a2.multiply(x_true);
  SolveResult r = solver.solve(b2, opt);
  EXPECT_TRUE(r.converged);
  for (int i = 0; i < a2.rows(); ++i) EXPECT_NEAR(r.x[i], x_true[i], 1e-6);

  SolveResult rm = solver.solve(b2, mixed);
  EXPECT_TRUE(rm.converged);
  EXPECT_TRUE(solver.has_fp32_mirror());
  for (int i = 0; i < a2.rows(); ++i) EXPECT_NEAR(rm.x[i], x_true[i], 1e-6);
  // A stale preconditioner would still converge eventually — the sharp check
  // is that the mixed iteration count stays in the same regime as fp64.
  EXPECT_LE(rm.iterations, r.iterations + 5);
}

TEST(MixedPrecision, RoughSolveHonorsPrecisionMode) {
  CsrMatrix a = laplacian_2d(16);
  Rng rng(24);
  Vec x_true = random_vec(a.rows(), rng);
  Vec b = a.multiply(x_true);
  AmgPcgSolver solver(a);
  SolveResult r64 = solver.solve_rough(b, 4);
  SolveResult rmx =
      solver.solve_rough(b, 4, /*x0=*/nullptr, PrecisionMode::kMixed);
  EXPECT_EQ(r64.iterations, 4);
  EXPECT_EQ(rmx.iterations, 4);
  // Four preconditioned iterations land both variants in the same error
  // regime; the fp32 cycle only perturbs the direction slightly.
  const double e64 = linalg::norm2(linalg::subtract(r64.x, x_true));
  const double emx = linalg::norm2(linalg::subtract(rmx.x, x_true));
  EXPECT_LT(emx, 4.0 * e64 + 1e-12);
}

}  // namespace
}  // namespace irf::solver
