// Tests for the additional solver families the paper's introduction surveys:
// the Monte-Carlo random-walk solver and the incomplete-Cholesky
// preconditioner (sparse-factorization family).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pg/generator.hpp"
#include "pg/mna.hpp"
#include "pg/solve.hpp"
#include "solver/cg.hpp"
#include "solver/ichol.hpp"
#include "solver/random_walk.hpp"
#include "spice/parser.hpp"

namespace irf::solver {
namespace {

/// Pad -- 1 ohm -- A -- 1 ohm -- B with 1 mA at B (hand-solvable ladder).
constexpr const char* kLadder = R"(
V1 n1_m2_0_0 0 1.1
R1 n1_m2_0_0 n1_m1_0_0 1
R2 n1_m1_0_0 n1_m1_2000_0 1
I1 n1_m1_2000_0 0 1m
)";

TEST(RandomWalk, DeterministicSingleEdge) {
  // One node hanging off the pad: every walk is {pay cost, step to pad},
  // so the Monte-Carlo estimate is exact: v = vdd - I*R.
  spice::Netlist net = spice::parse_string(
      "V1 n1_m2_0_0 0 1.1\n"
      "R1 n1_m2_0_0 n1_m1_0_0 2\n"
      "I1 n1_m1_0_0 0 1m\n");
  RandomWalkSolver rw(net);
  RandomWalkEstimate e = rw.estimate(*net.find_node("n1_m1_0_0"));
  EXPECT_NEAR(e.voltage, 1.1 - 2e-3, 1e-12);
  EXPECT_NEAR(e.std_error, 0.0, 1e-12);
}

TEST(RandomWalk, MatchesHandSolvedLadder) {
  spice::Netlist net = spice::parse_string(kLadder);
  RandomWalkOptions opt;
  opt.walks_per_node = 4000;
  opt.seed = 7;
  RandomWalkSolver rw(net, opt);
  const spice::NodeId a = *net.find_node("n1_m1_0_0");
  const spice::NodeId b = *net.find_node("n1_m1_2000_0");
  RandomWalkEstimate ea = rw.estimate(a);
  RandomWalkEstimate eb = rw.estimate(b);
  // Monte-Carlo estimates: allow 5-sigma against the hand solution.
  EXPECT_NEAR(ea.voltage, 1.1 - 1e-3, std::max(5.0 * ea.std_error, 1e-6));
  EXPECT_NEAR(eb.voltage, 1.1 - 2e-3, std::max(5.0 * eb.std_error, 1e-6));
}

TEST(RandomWalk, PadIsExact) {
  spice::Netlist net = spice::parse_string(kLadder);
  RandomWalkSolver rw(net);
  const spice::NodeId pad = *net.find_node("n1_m2_0_0");
  RandomWalkEstimate e = rw.estimate(pad);
  EXPECT_DOUBLE_EQ(e.voltage, 1.1);
  EXPECT_EQ(e.walks, 0);
}

TEST(RandomWalk, AgreesWithAmgPcgOnGrid) {
  Rng rng(31);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "rw");
  pg::PgSolution golden = pg::golden_solve(design);

  RandomWalkOptions opt;
  opt.walks_per_node = 800;
  opt.seed = 3;
  RandomWalkSolver rw(design.netlist, opt);
  // Check a handful of nodes: Monte-Carlo error ~ std_error; require 4-sigma.
  for (spice::NodeId node : {0, 7, 42, 123}) {
    RandomWalkEstimate e = rw.estimate(node);
    const double tol = std::max(4.0 * e.std_error, 5e-5);
    EXPECT_NEAR(e.voltage, golden.node_voltage[node], tol) << "node " << node;
  }
}

TEST(RandomWalk, RejectsUnreachableTopology) {
  spice::Netlist net = spice::parse_string(
      "V1 n1_m1_0_0 0 1.1\n"
      "R1 n1_m1_0_0 n1_m1_2000_0 1\n"
      "R2 n1_m1_8000_0 n1_m1_10000_0 1\n");
  EXPECT_THROW(RandomWalkSolver{net}, NumericError);
}

TEST(RandomWalk, DeterministicGivenSeed) {
  spice::Netlist net = spice::parse_string(kLadder);
  RandomWalkOptions opt;
  opt.walks_per_node = 50;
  opt.seed = 11;
  RandomWalkSolver a(net, opt), b(net, opt);
  const spice::NodeId node = *net.find_node("n1_m1_2000_0");
  EXPECT_DOUBLE_EQ(a.estimate(node).voltage, b.estimate(node).voltage);
}

TEST(IncompleteCholesky, ExactOnTridiagonal) {
  // IC(0) on a tridiagonal SPD matrix is the exact Cholesky factor, so one
  // preconditioned CG iteration must converge.
  const int n = 30;
  linalg::TripletBuilder tb(n, n);
  for (int i = 0; i < n; ++i) {
    tb.add(i, i, 2.5);
    if (i + 1 < n) {
      tb.add(i, i + 1, -1.0);
      tb.add(i + 1, i, -1.0);
    }
  }
  linalg::CsrMatrix a = linalg::CsrMatrix::from_triplets(tb);
  Rng rng(1);
  linalg::Vec b(static_cast<std::size_t>(n));
  for (double& v : b) v = rng.normal();
  IncompleteCholesky ic(a);
  EXPECT_DOUBLE_EQ(ic.shift(), 0.0);
  SolveOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveResult r = preconditioned_cg(a, b, ic, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(IncompleteCholesky, AcceleratesPgSolve) {
  Rng rng(32);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "ic");
  pg::MnaSystem sys = pg::assemble_mna(design.netlist);
  SolveOptions opt;
  opt.rel_tolerance = 1e-8;
  opt.max_iterations = 20000;
  SolveResult plain = conjugate_gradient(sys.conductance, sys.rhs, opt);
  IncompleteCholesky ic(sys.conductance);
  SolveResult pre = preconditioned_cg(sys.conductance, sys.rhs, ic, opt);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  // Solutions agree.
  for (std::size_t i = 0; i < pre.x.size(); i += 17) {
    EXPECT_NEAR(pre.x[i], plain.x[i], 1e-5);
  }
}

TEST(IncompleteCholesky, RejectsNonSymmetric) {
  linalg::TripletBuilder tb(2, 2);
  tb.add(0, 0, 2.0);
  tb.add(0, 1, -1.0);
  tb.add(1, 1, 2.0);
  linalg::CsrMatrix a = linalg::CsrMatrix::from_triplets(tb);
  EXPECT_THROW(IncompleteCholesky{a}, NumericError);
}

TEST(SgsPreconditioner, AcceleratesCg) {
  Rng rng(35);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "sgs");
  pg::MnaSystem sys = pg::assemble_mna(design.netlist);
  SolveOptions opt;
  opt.rel_tolerance = 1e-8;
  opt.max_iterations = 20000;
  SolveResult plain = conjugate_gradient(sys.conductance, sys.rhs, opt);
  SgsPreconditioner sgs(sys.conductance, 1);
  SolveResult pre = preconditioned_cg(sys.conductance, sys.rhs, sgs, opt);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(SgsPreconditioner, RejectsZeroSweeps) {
  Rng rng(36);
  pg::PgDesign design = pg::generate_fake_design(24, rng, "sgs0");
  pg::MnaSystem sys = pg::assemble_mna(design.netlist);
  EXPECT_THROW(SgsPreconditioner(sys.conductance, 0), ConfigError);
}

TEST(WarmStart, PcgInitialGuessRespected) {
  Rng rng(33);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "warm");
  pg::MnaSystem sys = pg::assemble_mna(design.netlist);
  // Cold start: first residual is ||b||; warm start at vdd: much smaller.
  SolveOptions opt;
  opt.max_iterations = 0;
  opt.rel_tolerance = 0.0;
  SolveResult cold = conjugate_gradient(sys.conductance, sys.rhs, opt);
  linalg::Vec x0(sys.rhs.size(), design.vdd);
  SolveResult warm = conjugate_gradient(sys.conductance, sys.rhs, opt, &x0);
  ASSERT_FALSE(cold.residual_history.empty());
  ASSERT_FALSE(warm.residual_history.empty());
  EXPECT_LT(warm.residual_history.front(), 0.1 * cold.residual_history.front());
}

TEST(WarmStart, RoughSolutionErrorIsIrScale) {
  Rng rng(34);
  pg::PgDesign design = pg::generate_fake_design(32, rng, "warm2");
  pg::PgSolver solver(design);
  pg::PgSolution golden = solver.solve_golden();
  pg::PgSolution rough = solver.solve_rough(1);
  double max_err = 0.0;
  for (std::size_t i = 0; i < golden.ir_drop.size(); ++i) {
    max_err = std::max(max_err, std::abs(rough.ir_drop[i] - golden.ir_drop[i]));
  }
  // One warm-started AMG-PCG iteration already lands within the IR-drop
  // scale (millivolts), not the rail scale (volts).
  EXPECT_LT(max_err, 5e-3);
}

}  // namespace
}  // namespace irf::solver
