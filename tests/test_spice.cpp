// Tests for irf::spice: value parsing, node names, netlist, parser, writer
// round-trips and the circuit topology ("circuit generator") view.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "spice/netlist.hpp"
#include "spice/node_name.hpp"
#include "spice/parser.hpp"
#include "spice/topology.hpp"
#include "spice/value.hpp"
#include "spice/writer.hpp"

namespace irf::spice {
namespace {

TEST(Value, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_value("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_value("-3"), -3.0);
  EXPECT_DOUBLE_EQ(parse_value("1e-3"), 1e-3);
}

TEST(Value, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_value("2k"), 2e3);
  EXPECT_DOUBLE_EQ(parse_value("2MEG"), 2e6);
  EXPECT_DOUBLE_EQ(parse_value("5u"), 5e-6);
  EXPECT_DOUBLE_EQ(parse_value("7n"), 7e-9);
  EXPECT_DOUBLE_EQ(parse_value("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_value("4f"), 4e-15);
  EXPECT_DOUBLE_EQ(parse_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_value("2t"), 2e12);
}

TEST(Value, TrailingUnitLetters) {
  EXPECT_DOUBLE_EQ(parse_value("2kohm"), 2e3);
  EXPECT_DOUBLE_EQ(parse_value("3mA"), 3e-3);
}

TEST(Value, MalformedThrows) {
  EXPECT_THROW(parse_value(""), ParseError);
  EXPECT_THROW(parse_value("abc"), ParseError);
  EXPECT_THROW(parse_value("1x"), ParseError);
  // The checked parser also rejects forms strtod would quietly accept.
  EXPECT_THROW(parse_value("inf"), ParseError);
  EXPECT_THROW(parse_value("nan"), ParseError);
  EXPECT_THROW(parse_value("0x10"), ParseError);
  EXPECT_THROW(parse_value("1e999"), ParseError);
}

TEST(Value, FormatRoundTrips) {
  for (double v : {0.5, 1234.5678, 1e-9, -42.0}) {
    EXPECT_DOUBLE_EQ(parse_value(format_value(v)), v);
  }
}

TEST(NodeName, ParseAndCompose) {
  NodeCoords c = parse_node_name("n1_m4_17500_209000");
  EXPECT_EQ(c.net, 1);
  EXPECT_EQ(c.layer, 4);
  EXPECT_EQ(c.x_nm, 17500);
  EXPECT_EQ(c.y_nm, 209000);
  EXPECT_EQ(make_node_name(c), "n1_m4_17500_209000");
}

TEST(NodeName, Detection) {
  EXPECT_TRUE(is_coordinate_name("n1_m1_0_0"));
  EXPECT_FALSE(is_coordinate_name("vdd"));
  EXPECT_FALSE(is_coordinate_name("n1_m1_0"));
  EXPECT_FALSE(is_coordinate_name("x1_m1_0_0"));
  EXPECT_FALSE(is_coordinate_name("n1_m1_a_0"));
  EXPECT_THROW(parse_node_name("bogus"), ParseError);
}

TEST(Netlist, InterningAndGround) {
  Netlist net;
  NodeId a = net.intern_node("n1_m1_0_0");
  NodeId b = net.intern_node("n1_m1_0_0");
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.intern_node("0"), kGround);
  EXPECT_EQ(net.intern_node("gnd"), kGround);
  EXPECT_EQ(net.num_nodes(), 1);
  ASSERT_TRUE(net.node_coords(a).has_value());
  EXPECT_EQ(net.node_coords(a)->layer, 1);
}

TEST(Netlist, ValidationCatchesProblems) {
  Netlist net;
  NodeId a = net.intern_node("n1_m1_0_0");
  EXPECT_THROW(net.add_resistor("R1", a, a, -1.0), ParseError);  // negative R
  net.add_resistor("R1", a, net.intern_node("n1_m1_2000_0"), 1.0);
  EXPECT_THROW(net.validate(), ParseError);  // no voltage source
  net.add_voltage_source("V1", a, 1.1);
  EXPECT_NO_THROW(net.validate());
}

TEST(Netlist, LayersSorted) {
  Netlist net;
  net.intern_node("n1_m7_0_0");
  net.intern_node("n1_m1_0_0");
  net.intern_node("n1_m4_0_0");
  std::vector<int> layers = net.layers();
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0], 1);
  EXPECT_EQ(layers[2], 7);
}

TEST(Netlist, ScaleCurrents) {
  Netlist net;
  NodeId a = net.intern_node("n1_m1_0_0");
  net.add_current_source("I1", a, 2.0);
  net.scale_current_sources(0.5);
  EXPECT_DOUBLE_EQ(net.current_sources()[0].amps, 1.0);
}

constexpr const char* kDeck = R"(* tiny PG deck
V1 n1_m2_0_0 0 1.1
R1 n1_m1_0_0 n1_m1_2000_0 0.5
R2 n1_m1_2000_0 n1_m1_4000_0 0.5
Rv n1_m2_0_0 n1_m1_0_0 0.1
I1 n1_m1_4000_0 0 1m
.end
)";

TEST(Parser, ParsesTinyDeck) {
  Netlist net = parse_string(kDeck);
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.resistors().size(), 3u);
  EXPECT_EQ(net.current_sources().size(), 1u);
  EXPECT_EQ(net.voltage_sources().size(), 1u);
  EXPECT_DOUBLE_EQ(net.current_sources()[0].amps, 1e-3);
}

TEST(Parser, HandlesCommentsAndContinuations) {
  Netlist net = parse_string(
      "* comment\n"
      "V1 n1_m1_0_0 0 1.1 $ inline comment\n"
      "R1 n1_m1_0_0\n"
      "+ n1_m1_2000_0 0.5\n"
      ".end\n");
  EXPECT_EQ(net.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(net.resistors()[0].ohms, 0.5);
}

TEST(Parser, ReversedSourceOrientationNormalized) {
  Netlist net = parse_string(
      "V1 0 n1_m1_0_0 -1.1\n"
      "R1 n1_m1_0_0 n1_m1_2000_0 1\n"
      "I1 0 n1_m1_2000_0 -2m\n");
  EXPECT_DOUBLE_EQ(net.voltage_sources()[0].volts, 1.1);
  EXPECT_DOUBLE_EQ(net.current_sources()[0].amps, 2e-3);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_string("V1 n1_m1_0_0 0 1.1\nR1 n1_m1_0_0 0.5\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownElement) {
  EXPECT_THROW(parse_string("C1 n1_m1_0_0 0 1p\n"), ParseError);
  EXPECT_THROW(parse_string(".weird\n"), ParseError);
}

TEST(Parser, RejectsResistorToNowhere) {
  EXPECT_THROW(parse_string("R1 0 0 1.0\nV1 n1_m1_0_0 0 1.1\n"), ParseError);
}

TEST(Writer, RoundTripPreservesElements) {
  Netlist net = parse_string(kDeck);
  Netlist again = parse_string(write_string(net));
  EXPECT_EQ(again.num_nodes(), net.num_nodes());
  ASSERT_EQ(again.resistors().size(), net.resistors().size());
  for (std::size_t i = 0; i < net.resistors().size(); ++i) {
    EXPECT_DOUBLE_EQ(again.resistors()[i].ohms, net.resistors()[i].ohms);
  }
  ASSERT_EQ(again.current_sources().size(), net.current_sources().size());
  EXPECT_DOUBLE_EQ(again.current_sources()[0].amps, net.current_sources()[0].amps);
  EXPECT_DOUBLE_EQ(again.voltage_sources()[0].volts, net.voltage_sources()[0].volts);
}

TEST(Topology, AdjacencyAndPads) {
  Netlist net = parse_string(kDeck);
  CircuitTopology topo(net);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.pad_nodes().size(), 1u);
  EXPECT_TRUE(topo.all_nodes_reach_pad());
  NodeId pad = topo.pad_nodes()[0];
  EXPECT_TRUE(topo.is_pad(pad));
  EXPECT_DOUBLE_EQ(topo.pad_voltage()[pad], 1.1);
  // The middle M1 node has two wires.
  NodeId mid = *net.find_node("n1_m1_2000_0");
  EXPECT_EQ(topo.wires_of(mid).size(), 2u);
}

TEST(Topology, DetectsUnreachableNode) {
  Netlist net = parse_string(
      "V1 n1_m1_0_0 0 1.1\n"
      "R1 n1_m1_0_0 n1_m1_2000_0 1\n"
      "R2 n1_m1_8000_0 n1_m1_10000_0 1\n");  // island
  CircuitTopology topo(net);
  EXPECT_FALSE(topo.all_nodes_reach_pad());
}

TEST(Topology, LoadCurrentAccumulates) {
  Netlist net = parse_string(
      "V1 n1_m1_0_0 0 1.1\n"
      "R1 n1_m1_0_0 n1_m1_2000_0 1\n"
      "I1 n1_m1_2000_0 0 1m\n"
      "I2 n1_m1_2000_0 0 2m\n");
  CircuitTopology topo(net);
  NodeId loaded = *net.find_node("n1_m1_2000_0");
  EXPECT_NEAR(topo.load_current()[loaded], 3e-3, 1e-15);
}

}  // namespace
}  // namespace irf::spice
