// Tests for irf::train: samples/views, rotation augmentation, normalization,
// metrics, the curriculum scheduler and the training loop.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/unet.hpp"
#include "train/curriculum.hpp"
#include "train/dataset.hpp"
#include "train/metrics.hpp"
#include "train/normalizer.hpp"
#include "train/trainer.hpp"

namespace irf::train {
namespace {

/// Shared tiny design set: built once for the whole test binary because
/// golden solves dominate setup time.
class TrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScaleConfig cfg = make_scale_config(Scale::kCi);
    cfg.image_size = 32;
    cfg.num_fake_designs = 3;
    cfg.num_real_designs = 2;
    cfg.seed = 99;
    set_ = std::make_unique<DesignSet>(build_design_set(cfg));
    samples_ = std::make_unique<std::vector<Sample>>(make_samples(set_->train, 2, 32));
  }
  static void TearDownTestSuite() {
    samples_.reset();
    set_.reset();
  }
  static std::unique_ptr<DesignSet> set_;
  static std::unique_ptr<std::vector<Sample>> samples_;
};

std::unique_ptr<DesignSet> TrainFixture::set_;
std::unique_ptr<std::vector<Sample>> TrainFixture::samples_;

TEST_F(TrainFixture, SplitFollowsContestSetup) {
  // 3 fake + 1 real train, 1 real test.
  EXPECT_EQ(set_->train.size(), 4u);
  EXPECT_EQ(set_->test.size(), 1u);
  EXPECT_EQ(set_->test.front().design->kind, pg::DesignKind::kReal);
}

TEST_F(TrainFixture, SampleShapesAndKinds) {
  ASSERT_EQ(samples_->size(), 4u);
  const Sample& s = samples_->front();
  EXPECT_EQ(s.kind, pg::DesignKind::kFake);
  EXPECT_EQ(s.label.height(), 32);
  EXPECT_EQ(s.hier.size(), 21);
  EXPECT_EQ(s.flat.size(), 6);
  EXPECT_GT(s.label.max_value(), 0.0f);
  EXPECT_GT(s.rough_bottom.max_value(), 0.0f);
}

TEST_F(TrainFixture, ViewChannelCounts) {
  const Sample& s = samples_->front();
  EXPECT_EQ(view_channel_count(s, FeatureView::kIccadTriplet), 3);
  EXPECT_EQ(view_channel_count(s, FeatureView::kStructuralFlat), 5);
  EXPECT_EQ(view_channel_count(s, FeatureView::kFusionHier), 21);
  EXPECT_EQ(view_channel_count(s, FeatureView::kFusionNoNum), 17);
  EXPECT_EQ(view_channel_count(s, FeatureView::kFusionFlat), 6);
}

TEST_F(TrainFixture, ViewsExcludeNumericalWhereRequired) {
  const Sample& s = samples_->front();
  for (FeatureView v : {FeatureView::kIccadTriplet, FeatureView::kStructuralFlat,
                        FeatureView::kFusionNoNum}) {
    for (const std::string& name : view_channels(s, v)) {
      EXPECT_EQ(name.rfind("num_ir", 0), std::string::npos) << view_name(v);
    }
  }
}

TEST_F(TrainFixture, RotationAugmentationFourfold) {
  std::vector<Sample> aug = augment_rotations(*samples_);
  EXPECT_EQ(aug.size(), 4 * samples_->size());
  // Rotating back must reproduce the original label.
  const Sample& rot = aug[1];  // 90 degrees of sample 0
  EXPECT_EQ(rot.rotation_quarter_turns, 1);
  GridF back = rot.label.rotated90(3);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], samples_->front().label.data()[i]);
  }
  // Rotation preserves per-channel mass of current maps.
  EXPECT_NEAR(rot.hier.channels[4].sum(), samples_->front().hier.channels[4].sum(),
              1e-3);
}

TEST_F(TrainFixture, NormalizerBoundsInputs) {
  Normalizer norm = Normalizer::fit(*samples_);
  for (const Sample& s : *samples_) {
    for (FeatureView v : {FeatureView::kFusionHier, FeatureView::kStructuralFlat}) {
      nn::Tensor t = norm.input_tensor(s, v);
      for (float x : t.data()) {
        EXPECT_TRUE(std::isfinite(x));
        EXPECT_LE(std::abs(x), 1.0f + 1e-5f);
      }
    }
  }
}

TEST_F(TrainFixture, LabelTensorRoundTrip) {
  const Sample& s = samples_->front();
  nn::Tensor label = Normalizer::label_tensor(s);
  GridF volts = Normalizer::prediction_to_volts(label);
  for (std::size_t i = 0; i < volts.size(); ++i) {
    EXPECT_NEAR(volts.data()[i], s.label.data()[i], 1e-7f);
  }
}

TEST(Metrics, PerfectPrediction) {
  GridF g(8, 8, 0.001f);
  g(4, 4) = 0.01f;
  MapMetrics m = evaluate_map(g, g);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.mirde, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, KnownErrors) {
  GridF golden(4, 4, 0.0f);
  golden(0, 0) = 1.0f;  // single hotspot
  GridF pred(4, 4, 0.0f);
  pred(0, 1) = 1.0f;  // hotspot displaced
  MapMetrics m = evaluate_map(pred, golden);
  EXPECT_NEAR(m.mae, 2.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.mirde, 0.0);  // same max value
  EXPECT_DOUBLE_EQ(m.f1, 0.0);     // no overlap
}

TEST(Metrics, F1PartialOverlap) {
  GridF golden(2, 2, 0.0f);
  golden(0, 0) = 1.0f;
  golden(0, 1) = 0.95f;
  GridF pred = golden;
  pred(0, 1) = 0.5f;  // miss one hotspot pixel
  MapMetrics m = evaluate_map(pred, golden);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_NEAR(m.f1, 2.0 * 0.5 / 1.5, 1e-12);
}

TEST(Metrics, AggregateAveragesAndUnits) {
  std::vector<MapMetrics> per = {{0.001, 0.5, 1.0, 0.5, 0.002},
                                 {0.003, 1.0, 1.0, 1.0, 0.004}};
  AggregateMetrics agg = aggregate(per);
  EXPECT_NEAR(agg.mae, 0.002, 1e-12);
  EXPECT_NEAR(agg.mae_1e4(), 20.0, 1e-9);
  EXPECT_NEAR(agg.mirde_1e4(), 30.0, 1e-9);
  EXPECT_EQ(agg.num_designs, 2);
}

TEST(Curriculum, HardFractionRamps) {
  std::vector<Sample> samples(6);
  for (int i = 0; i < 6; ++i) {
    samples[static_cast<std::size_t>(i)].kind =
        i < 4 ? pg::DesignKind::kFake : pg::DesignKind::kReal;
  }
  CurriculumOptions opt;
  CurriculumScheduler sched(samples, 10, opt, Rng(1));
  EXPECT_LT(sched.hard_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(sched.hard_fraction(9), 1.0);
  // Epoch 0 contains fewer hard samples than the last epoch.
  auto count_hard = [&](const std::vector<int>& idx) {
    int hard = 0;
    for (int i : idx) {
      if (samples[static_cast<std::size_t>(i)].kind == pg::DesignKind::kReal) ++hard;
    }
    return hard;
  };
  CurriculumScheduler sched2(samples, 10, opt, Rng(1));
  EXPECT_LT(count_hard(sched2.epoch_indices(0)), count_hard(sched2.epoch_indices(9)));
}

TEST(Curriculum, OversamplingFactors) {
  std::vector<Sample> samples(3);
  samples[0].kind = pg::DesignKind::kFake;
  samples[1].kind = pg::DesignKind::kFake;
  samples[2].kind = pg::DesignKind::kReal;
  CurriculumOptions opt;
  opt.enabled = false;  // all samples from epoch 0
  CurriculumScheduler sched(samples, 1, opt, Rng(2));
  std::vector<int> idx = sched.epoch_indices(0);
  // fake x2 each + real x5 = 2*2 + 5 = 9.
  EXPECT_EQ(idx.size(), 9u);
}

TEST(Curriculum, DisabledIncludesEverythingImmediately) {
  std::vector<Sample> samples(4);
  samples[3].kind = pg::DesignKind::kReal;
  CurriculumOptions opt;
  opt.enabled = false;
  CurriculumScheduler sched(samples, 5, opt, Rng(3));
  EXPECT_DOUBLE_EQ(sched.hard_fraction(0), 1.0);
}

TEST_F(TrainFixture, TrainingReducesLoss) {
  Normalizer norm = Normalizer::fit(*samples_);
  Rng rng(5);
  const int ch = view_channel_count(samples_->front(), FeatureView::kFusionHier);
  auto model = models::make_ir_fusion_net(ch, 4, rng);
  TrainOptions opt;
  opt.epochs = 3;
  opt.learning_rate = 2e-3;
  TrainHistory hist = train_model(*model, *samples_, FeatureView::kFusionHier, norm, opt);
  ASSERT_EQ(hist.epoch_loss.size(), 3u);
  EXPECT_LT(hist.epoch_loss.back(), hist.epoch_loss.front());
}

TEST_F(TrainFixture, EvaluateProducesFiniteMetrics) {
  Normalizer norm = Normalizer::fit(*samples_);
  Rng rng(6);
  const int ch = view_channel_count(samples_->front(), FeatureView::kStructuralFlat);
  auto model = models::make_iredge(ch, 4, rng);
  TrainOptions opt;
  opt.epochs = 1;
  train_model(*model, *samples_, FeatureView::kStructuralFlat, norm, opt);
  std::vector<Sample> test = make_samples(set_->test, 2, 32);
  AggregateMetrics m = evaluate_model(*model, test, FeatureView::kStructuralFlat, norm);
  EXPECT_TRUE(std::isfinite(m.mae));
  EXPECT_GE(m.f1, 0.0);
  EXPECT_LE(m.f1, 1.0);
  EXPECT_GT(m.runtime_seconds, 0.0);
  EXPECT_EQ(m.num_designs, 1);
}

}  // namespace
}  // namespace irf::train
