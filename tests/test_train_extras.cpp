// Tests for the additional training machinery: Gaussian blur / label
// smoothing, AdamW weight decay, cosine LR schedule, and dropout.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/gaussian.hpp"
#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"
#include "models/unet.hpp"
#include "train/trainer.hpp"

namespace irf {
namespace {

TEST(GaussianBlur, PreservesConstantAndMass) {
  GridF constant(8, 8, 2.0f);
  GridF blurred = gaussian_blur(constant, 1.5);
  for (float v : blurred.data()) EXPECT_NEAR(v, 2.0f, 1e-6f);

  GridF impulse(15, 15, 0.0f);
  impulse(7, 7) = 1.0f;
  GridF spread = gaussian_blur(impulse, 1.0);
  // Interior impulse: mass conserved, peak reduced, symmetric.
  EXPECT_NEAR(spread.sum(), 1.0, 1e-4);
  EXPECT_LT(spread(7, 7), 1.0f);
  EXPECT_GT(spread(7, 7), spread(7, 8));
  EXPECT_NEAR(spread(7, 5), spread(7, 9), 1e-7f);
  EXPECT_NEAR(spread(5, 7), spread(9, 7), 1e-7f);
}

TEST(GaussianBlur, SigmaZeroIsIdentity) {
  Rng rng(1);
  GridF g(6, 6);
  for (float& v : g.data()) v = static_cast<float>(rng.uniform());
  GridF same = gaussian_blur(g, 0.0);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_FLOAT_EQ(same.data()[i], g.data()[i]);
}

TEST(GaussianBlur, LargerSigmaSmoothsMore) {
  Rng rng(2);
  GridF g(16, 16);
  for (float& v : g.data()) v = static_cast<float>(rng.uniform());
  auto variance = [](const GridF& x) {
    const double mean = x.mean();
    double acc = 0.0;
    for (float v : x.data()) acc += (v - mean) * (v - mean);
    return acc / static_cast<double>(x.size());
  };
  EXPECT_GT(variance(gaussian_blur(g, 0.5)), variance(gaussian_blur(g, 2.0)));
}

TEST(AdamW, WeightDecayShrinksUnusedDirections) {
  // With pure decay (gradient 0 via a loss independent of one parameter),
  // the decoupled term must still shrink the weights.
  nn::Tensor used = nn::Tensor::full({1, 1, 1, 1}, 1.0f, true);
  nn::Tensor unused = nn::Tensor::full({1, 1, 1, 1}, 1.0f, true);
  nn::Adam adam({used, unused}, 0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/0.5);
  for (int step = 0; step < 10; ++step) {
    nn::Tensor loss = nn::mse_loss(used, nn::Tensor::zeros({1, 1, 1, 1}));
    adam.zero_grad();
    loss.backward();
    // `unused` has an (empty) grad -> skipped entirely; touch it so decay
    // applies: give it a zero grad buffer.
    unused.mutable_grad();
    adam.step();
  }
  EXPECT_LT(used.data()[0], 1.0f);
  EXPECT_LT(unused.data()[0], 1.0f);      // decay alone shrank it
  EXPECT_GT(unused.data()[0], 0.5f);      // (1 - 0.1*0.5)^10 ~ 0.60
}

TEST(Dropout, EvalIsIdentityTrainZeroes) {
  nn::Dropout drop(0.5, 7);
  nn::Tensor x = nn::Tensor::full({1, 1, 8, 8}, 1.0f);
  drop.set_training(false);
  nn::Tensor eval_out = drop.forward(x);
  for (float v : eval_out.data()) EXPECT_FLOAT_EQ(v, 1.0f);

  drop.set_training(true);
  nn::Tensor train_out = drop.forward(x);
  int zeros = 0;
  for (float v : train_out.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted scaling 1/(1-0.5)
    }
  }
  EXPECT_GT(zeros, 8);   // p=0.5 on 64 values
  EXPECT_LT(zeros, 56);
}

TEST(Dropout, GradientFlowsThroughKeptUnits) {
  nn::Dropout drop(0.3, 9);
  drop.set_training(true);
  nn::Tensor x = nn::Tensor::full({1, 1, 4, 4}, 1.0f, true);
  nn::Tensor y = drop.forward(x);
  nn::Tensor loss = nn::mse_loss(y, nn::Tensor::zeros({1, 1, 4, 4}));
  loss.backward();
  // Dropped units get zero grad; kept units get non-zero grad.
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    if (y.data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_NE(x.grad()[i], 0.0f);
    }
  }
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(nn::Dropout(1.0), ConfigError);
  EXPECT_THROW(nn::Dropout(-0.1), ConfigError);
}

TEST(Trainer, OnEpochCallbackAndCosineDecayRun) {
  // A 1-sample, 3-epoch run exercising the cosine schedule and callback.
  Rng rng(11);
  train::Sample s;
  s.design_name = "cb";
  s.kind = pg::DesignKind::kFake;
  s.label = GridF(16, 16, 0.001f);
  s.rough_bottom = GridF(16, 16, 0.0f);
  s.flat.channels = {GridF(16, 16, 1.0f), GridF(16, 16, 0.5f), GridF(16, 16, 0.25f)};
  s.flat.names = {"current_all", "eff_dist", "pdn_density_all"};

  auto model = models::make_iredge(3, 4, rng);
  train::Normalizer norm = train::Normalizer::fit({s});
  train::TrainOptions opt;
  opt.epochs = 3;
  opt.lr_min_ratio = 0.2;
  opt.label_blur_sigma = 0.8;
  opt.curriculum.enabled = false;
  std::vector<int> epochs_seen;
  opt.on_epoch = [&](int epoch, double loss) {
    epochs_seen.push_back(epoch);
    EXPECT_TRUE(std::isfinite(loss));
  };
  train::TrainHistory hist = train::train_model(
      *model, {s}, train::FeatureView::kIccadTriplet, norm, opt);
  EXPECT_EQ(epochs_seen, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(hist.epoch_loss.size(), 3u);
}

TEST(TrainOptionsValidation, BadLrRatioRejected) {
  train::TrainOptions opt;
  opt.lr_min_ratio = 0.0;
  std::vector<train::Sample> samples(1);
  samples[0].label = GridF(16, 16, 0.0f);
  // The option check fires before anything touches the samples/model.
  Rng rng(3);
  auto model = models::make_iredge(3, 4, rng);
  train::Normalizer norm;
  EXPECT_THROW(
      train::train_model(*model, samples, train::FeatureView::kIccadTriplet, norm, opt),
      ConfigError);
}

}  // namespace
}  // namespace irf
