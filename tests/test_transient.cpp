// Tests for the transient extension: waveform parsing/evaluation, capacitor
// cards, backward-Euler correctness against the analytic RC response, and
// the synthetic activity generator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pg/generator.hpp"
#include "pg/solve.hpp"
#include "pg/transient.hpp"
#include "spice/parser.hpp"
#include "spice/waveform.hpp"
#include "spice/writer.hpp"

namespace irf {
namespace {

TEST(Waveform, DcAndInterpolation) {
  spice::Waveform dc(3.0);
  EXPECT_TRUE(dc.is_dc());
  EXPECT_DOUBLE_EQ(dc.value_at(0.0), 3.0);
  EXPECT_DOUBLE_EQ(dc.value_at(1e9), 3.0);

  spice::Waveform pwl({0.0, 1.0, 3.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(pwl.value_at(-1.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(pwl.value_at(0.5), 1.0);    // interpolate
  EXPECT_DOUBLE_EQ(pwl.value_at(2.0), 2.0);    // flat segment
  EXPECT_DOUBLE_EQ(pwl.value_at(10.0), 2.0);   // clamp right
  EXPECT_DOUBLE_EQ(pwl.max_abs(), 2.0);
}

TEST(Waveform, ValidatesMonotoneTimes) {
  EXPECT_THROW(spice::Waveform({1.0, 1.0}, {0.0, 1.0}), ParseError);
  EXPECT_THROW(spice::Waveform({-1.0, 1.0}, {0.0, 1.0}), ParseError);
  EXPECT_THROW(spice::Waveform({0.0}, {}), ParseError);
}

TEST(Waveform, ParsePwlTokens) {
  spice::Waveform w = spice::parse_pwl({"0", "0", "1n", "2m", "2n", "0"});
  EXPECT_DOUBLE_EQ(w.value_at(0.5e-9), 1e-3);
  EXPECT_THROW(spice::parse_pwl({"0", "0", "1n"}), ParseError);
}

TEST(ParserTransient, CapacitorAndPwlCards) {
  spice::Netlist net = spice::parse_string(
      "V1 n1_m2_0_0 0 1.1\n"
      "R1 n1_m2_0_0 n1_m1_0_0 1\n"
      "C1 n1_m1_0_0 0 1p\n"
      "I1 n1_m1_0_0 0 PWL(0 0 1n 1m 2n 0)\n");
  ASSERT_EQ(net.capacitors().size(), 1u);
  EXPECT_DOUBLE_EQ(net.capacitors()[0].farads, 1e-12);
  ASSERT_EQ(net.current_sources().size(), 1u);
  ASSERT_TRUE(net.current_sources()[0].waveform.has_value());
  EXPECT_NEAR(net.current_sources()[0].amps_at(1e-9), 1e-3, 1e-15);
  EXPECT_TRUE(net.has_transient_elements());
}

TEST(ParserTransient, WriterRoundTripsTransientElements) {
  spice::Netlist net = spice::parse_string(
      "V1 n1_m2_0_0 0 1.1\n"
      "R1 n1_m2_0_0 n1_m1_0_0 1\n"
      "C1 n1_m1_0_0 0 2.5p\n"
      "I1 n1_m1_0_0 0 PWL(0 1m 1n 3m)\n");
  spice::Netlist again = spice::parse_string(spice::write_string(net));
  ASSERT_EQ(again.capacitors().size(), 1u);
  EXPECT_DOUBLE_EQ(again.capacitors()[0].farads, 2.5e-12);
  ASSERT_TRUE(again.current_sources()[0].waveform.has_value());
  EXPECT_DOUBLE_EQ(again.current_sources()[0].amps_at(0.5e-9), 2e-3);
}

TEST(ParserTransient, RejectsMalformedCards) {
  EXPECT_THROW(spice::parse_string("C1 0 0 1p\nV1 n1_m1_0_0 0 1.1\n"), ParseError);
  EXPECT_THROW(
      spice::parse_string("I1 n1_m1_0_0 0 PWL(0 0 1n\nV1 n1_m1_0_0 0 1.1\n"),
      ParseError);
}

/// Single RC node: pad -- R -- node, C to ground, current step I0 at t>=0.
/// Analytic: v(t) = vdd - I0*R*(1 - e^{-t/(RC)}) starting from v(0) = vdd
/// (zero current at t=0- means the DC point with the step applied at t=0
/// starts the exponential settling).
TEST(Transient, MatchesAnalyticRcStep) {
  const double r = 10.0, c = 1e-12, i0 = 1e-3, vdd = 1.0;
  const double tau = r * c;  // 10 ps
  std::ostringstream deck;
  // Current is zero until t0 = 0.1*tau, then steps (sharply) to i0: the node
  // starts at the zero-load DC point v = vdd and discharges toward
  // vdd - i0*r with time constant tau.
  deck << "V1 n1_m2_0_0 0 " << vdd << "\n"
       << "R1 n1_m2_0_0 n1_m1_0_0 " << r << "\n"
       << "C1 n1_m1_0_0 0 " << c << "\n"
       << "I1 n1_m1_0_0 0 PWL(0 0 " << 0.1 * tau << " 0 " << 0.1001 * tau << " " << i0
       << " 1 " << i0 << ")\n";
  pg::PgDesign design;
  design.name = "rc";
  design.vdd = vdd;
  design.width_nm = 1;
  design.height_nm = 1;
  design.netlist = spice::parse_string(deck.str());

  pg::TransientOptions opt;
  opt.timestep = tau / 200.0;
  opt.duration = 8.0 * tau;
  opt.probe_nodes = {*design.netlist.find_node("n1_m1_0_0")};

  pg::TransientSolver solver(design, opt);
  pg::TransientResult res = solver.run();
  ASSERT_EQ(res.probe_traces.size(), 1u);
  const linalg::Vec& trace = res.probe_traces[0];
  ASSERT_GT(trace.size(), 200u);

  // Final value: fully settled step response.
  const double v_final = vdd - i0 * r;
  EXPECT_NEAR(trace.back(), v_final, 1e-5);

  // Mid-transient value against the analytic exponential (3% of the step,
  // covering backward Euler's first-order error at h = tau/200).
  const double t0 = 0.1 * tau;
  const double t_mid = t0 + tau;
  const std::size_t k_mid = static_cast<std::size_t>(t_mid / opt.timestep);
  const double v_analytic = vdd - i0 * r * (1.0 - std::exp(-(res.times[k_mid] - t0) / tau));
  EXPECT_NEAR(trace[k_mid], v_analytic, 0.03 * i0 * r);

  // Monotone decay (single RC never rings) once the step has occurred.
  for (std::size_t k = static_cast<std::size_t>(t0 / opt.timestep) + 2;
       k < trace.size(); ++k) {
    EXPECT_LE(trace[k], trace[k - 1] + 1e-12);
    EXPECT_GE(trace[k], v_final - 1e-9);
  }
}

TEST(Transient, DcDesignStaysAtStaticSolution) {
  // No caps, DC currents: every step must reproduce the static solve.
  Rng rng(41);
  pg::PgDesign design = pg::generate_fake_design(24, rng, "dc");
  pg::PgSolution stat = pg::golden_solve(design);
  pg::TransientOptions opt;
  opt.timestep = 1e-10;
  opt.duration = 1e-9;
  pg::TransientSolver solver(design, opt);
  pg::TransientResult res = solver.run();
  for (std::size_t n = 0; n < res.worst_ir_drop.size(); ++n) {
    EXPECT_NEAR(res.worst_ir_drop[n], stat.ir_drop[n], 1e-6);
  }
}

TEST(Transient, ActivityGeneratorAddsElements) {
  Rng rng(42);
  pg::PgDesign design = pg::generate_fake_design(24, rng, "act");
  const std::size_t sources_before = design.netlist.current_sources().size();
  pg::add_transient_activity(design, rng);
  EXPECT_TRUE(design.netlist.has_transient_elements());
  EXPECT_GT(design.netlist.capacitors().size(), 0u);
  EXPECT_GT(design.netlist.current_sources().size(), sources_before);
  // The delta pulses average to ~zero: static solve barely moves.
  pg::PgSolution stat = pg::golden_solve(design);
  for (double v : stat.ir_drop) EXPECT_LT(std::abs(v), 0.05);
}

TEST(Transient, SwitchingRaisesWorstDropAboveStatic) {
  Rng rng(43);
  pg::PgDesign design = pg::generate_fake_design(24, rng, "dyn");
  pg::PgSolution stat = pg::golden_solve(design);
  pg::TransientActivityConfig act;
  act.pulse_peak_ratio = 6.0;
  act.switching_fraction = 0.8;
  pg::add_transient_activity(design, rng, act);

  pg::TransientOptions opt;
  opt.timestep = 2e-10;
  opt.duration = 6e-9;
  pg::TransientSolver solver(design, opt);
  pg::TransientResult res = solver.run();
  double worst_dynamic = 0.0, worst_static = 0.0;
  for (std::size_t n = 0; n < res.worst_ir_drop.size(); ++n) {
    worst_dynamic = std::max(worst_dynamic, res.worst_ir_drop[n]);
    worst_static = std::max(worst_static, stat.ir_drop[n]);
  }
  // Pulsed draw above the DC average must deepen the worst-case drop.
  EXPECT_GT(worst_dynamic, worst_static);
  EXPECT_GT(res.total_pcg_iterations, 0);
}

TEST(Transient, OptionValidation) {
  Rng rng(44);
  pg::PgDesign design = pg::generate_fake_design(24, rng, "opt");
  pg::TransientOptions opt;
  opt.timestep = 0.0;
  EXPECT_THROW(pg::TransientSolver(design, opt), ConfigError);
  opt.timestep = 1e-10;
  opt.duration = 1e-12;
  EXPECT_THROW(pg::TransientSolver(design, opt), ConfigError);
  opt.duration = 1e-9;
  opt.probe_nodes = {999999};
  EXPECT_THROW(pg::TransientSolver(design, opt), ConfigError);
}

}  // namespace
}  // namespace irf
