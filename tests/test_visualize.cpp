// Tests for the feature-stack visualization dump.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "features/visualize.hpp"
#include "pg/generator.hpp"
#include "pg/solve.hpp"

namespace irf::features {
namespace {

namespace fs = std::filesystem;

TEST(Visualize, WritesEveryChannel) {
  Rng rng(61);
  pg::PgDesign design = pg::generate_fake_design(24, rng, "viz");
  pg::PgSolver solver(design);
  pg::PgSolution rough = solver.solve_rough(2);
  FeatureOptions opts;
  opts.image_size = 24;
  FeatureStack stack = extract_features(design, &rough, opts);

  const fs::path dir = fs::temp_directory_path() / "irf_viz_test";
  fs::remove_all(dir);
  std::vector<std::string> written = write_feature_stack(stack, dir.string());
  EXPECT_EQ(written.size(), 2u * static_cast<std::size_t>(stack.size()));
  for (const std::string& f : written) {
    EXPECT_TRUE(fs::exists(f)) << f;
    EXPECT_GT(fs::file_size(f), 0u) << f;
  }
  // Filenames embed the channel names for discoverability.
  EXPECT_NE(written.front().find("num_ir"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Visualize, EmptyDirectoryCreated) {
  FeatureStack empty;
  const fs::path dir = fs::temp_directory_path() / "irf_viz_empty";
  fs::remove_all(dir);
  std::vector<std::string> written = write_feature_stack(empty, dir.string());
  EXPECT_TRUE(written.empty());
  EXPECT_TRUE(fs::is_directory(dir));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace irf::features
