#include "analyze/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "check/lexer.hpp"
#include "check/lint.hpp"

namespace irf::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Comment-only projection: comment bytes kept, everything else (including
/// string literals) blanked. Lock-order annotations are read from here so a
/// quoted "irf-lock-order:" inside analyzer source never parses as one.
std::string comment_view(const std::string& s, const std::vector<check::lex::Kind>& kind) {
  std::string out = s;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (kind[i] != check::lex::Kind::kComment && s[i] != '\n') out[i] = ' ';
  }
  return out;
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

}  // namespace

std::string Finding::str() const {
  return file + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

std::string module_of(const std::string& path) {
  const std::vector<std::string> parts = split_path(path);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src") {
      // ".../src/<module>/..." or ".../src/irf.hpp" (the facade).
      if (i + 2 < parts.size()) return parts[i + 1];
      if (i + 1 < parts.size()) return "irf";
      return "";
    }
  }
  for (const std::string& p : parts) {
    if (p == "tools" || p == "tests" || p == "bench" || p == "examples") return p;
  }
  return "";
}

bool is_declared_module(const LayerTable& table, const std::string& module) {
  auto it = table.modules.find(module);
  return it != table.modules.end() && !it->second.any;
}

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> keys;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string rule, file, key;
    if (fields >> rule >> file >> key) keys.insert(rule + "|" + file + "|" + key);
  }
  return keys;
}

Analyzer::Analyzer(Config config) : config_(std::move(config)) {
  table_ = parse_layer_table(config_.layers_text);
  baseline_keys_ = parse_baseline(config_.baseline_text);
  for (const std::string& err : table_.errors) {
    report({config_.layers_path, 0, "layer-table", err, "parse"});
  }
}

void Analyzer::add_file(const std::string& path, const std::string& content) {
  ++files_scanned_;
  FileRecord rec;
  rec.path = path;
  rec.module = module_of(path);
  const std::vector<std::string> parts = split_path(path);
  std::string base = parts.empty() ? path : parts.back();
  const std::size_t dot = base.rfind('.');
  rec.stem = dot == std::string::npos ? base : base.substr(0, dot);
  rec.content = content;
  const std::vector<check::lex::Kind> kinds = check::lex::classify(content);
  rec.code = check::lex::code_view(content, kinds);
  rec.comments = comment_view(content, kinds);
  files_.push_back(std::move(rec));
}

void Analyzer::finish() {
  // Pass 0 + 3: the carried-forward token rules and the obs-name extraction
  // share the lint engine (one scan, one name registry).
  check::lint::Linter linter;
  for (const FileRecord& f : files_) linter.add_file(f.path, f.content);
  linter.finish();
  for (const check::lint::Issue& issue : linter.issues()) {
    report({issue.file, issue.line, issue.rule, issue.message,
            "L" + std::to_string(issue.line)});
  }
  for (const auto& [name, use] : linter.names()) {
    if (obs_sites_.find(name) == obs_sites_.end()) obs_names_.emplace_back(name, use.kind);
    obs_sites_[name].emplace_back(use.file, use.line);
  }

  run_layering();
  run_env_contract();
  run_lock_order();

  auto order = [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  };
  std::stable_sort(findings_.begin(), findings_.end(), order);
  std::stable_sort(baselined_.begin(), baselined_.end(), order);
}

void Analyzer::report(Finding finding) {
  const std::string match = finding.rule + "|" + finding.file + "|" + finding.key;
  if (baseline_keys_.count(match) > 0) {
    baselined_.push_back(std::move(finding));
  } else {
    findings_.push_back(std::move(finding));
  }
}

std::string Analyzer::findings_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"irf.analyze.v1\",\"files_scanned\":" << files_scanned_
      << ",\"baselined\":" << baselined_.size() << ",\"findings\":[";
  bool first = true;
  for (const Finding& f : findings_) {
    if (!first) out << ",";
    first = false;
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << json_escape(f.rule) << "\",\"key\":\"" << json_escape(f.key)
        << "\",\"message\":\"" << json_escape(f.message) << "\"}";
  }
  out << "],\"counts\":{";
  std::map<std::string, int> counts;
  for (const Finding& f : findings_) ++counts[f.rule];
  first = true;
  for (const auto& [rule, n] : counts) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(rule) << "\":" << n;
  }
  out << "}}\n";
  return out.str();
}

std::string Analyzer::obs_registry_json() const {
  std::vector<std::pair<std::string, std::string>> names = obs_names_;
  std::sort(names.begin(), names.end());
  std::ostringstream out;
  out << "{\"schema\":\"irf.obs_names.v1\",\"names\":[";
  bool first = true;
  for (const auto& [name, kind] : names) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(name) << "\",\"kind\":\"" << json_escape(kind)
        << "\",\"sites\":[";
    auto sites = obs_sites_.at(name);
    std::sort(sites.begin(), sites.end());
    bool s_first = true;
    for (const auto& [file, line] : sites) {
      if (!s_first) out << ",";
      s_first = false;
      out << "{\"file\":\"" << json_escape(file) << "\",\"line\":" << line << "}";
    }
    out << "]}";
  }
  out << "]}\n";
  return out.str();
}

std::string Analyzer::env_table_markdown() const {
  std::map<std::string, std::vector<std::string>> by_var;
  for (const EnvSite& s : env_sites_) {
    by_var[s.var].push_back(s.file + ":" + std::to_string(s.line));
  }
  std::ostringstream out;
  out << "| Variable | Values | Effect |\n|---|---|---|\n";
  for (const auto& [var, sites] : by_var) {
    out << "| `" << var << "` | … | … (read at ";
    for (std::size_t i = 0; i < sites.size(); ++i) out << (i ? ", " : "") << sites[i];
    out << ") |\n";
  }
  return out.str();
}

std::string Analyzer::baseline_lines() const {
  std::ostringstream out;
  for (const Finding& f : findings_) {
    out << f.rule << " " << f.file << " " << f.key << "  # " << f.message << "\n";
  }
  return out.str();
}

}  // namespace irf::analyze
