#pragma once

/// \file analyzer.hpp
/// irf_analyze — the project's multi-pass semantic static analyzer. It
/// subsumes the old token-level linter (whose rules it still runs via
/// src/check/lint.{hpp,cpp}) and adds four semantic passes that keep the
/// architecture sound the way the sanitizer presets keep the runtime sound:
///
///   1. include-graph + layering DAG   rules: layering, layer-cycle,
///                                            layer-table, private-include
///   2. env-var contract               rules: env-undocumented,
///                                            env-raw-parse, env-doc-stale
///   3. obs-name registry              rule:  obs-name (from the lint
///                                            engine) + obs_names.json
///   4. lock-order analysis            rules: lock-unannotated, lock-order,
///                                            lock-cycle
///
/// The class is file-system free: callers feed it file contents (the
/// tools/analyze/main.cpp driver does the IO), which is what makes the
/// gtest suite in tests/test_analyze.cpp possible. See docs/ANALYSIS.md for
/// the rule catalogue, the annotation syntax, and the baseline workflow.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace irf::analyze {

/// One violation. `key` is the line-number-free identity used for baseline
/// matching (e.g. "common->obs", "IRF_FOO", "engine.mutex_->csr.cache_mu_"),
/// so a committed baseline survives unrelated edits to the flagged file.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string key;

  std::string str() const;  // "file:line: rule: message"
};

/// Parsed layering table (tools/analyze/layers.conf). Plain text:
///
///   [layers]
///   common =                      # bottom: may depend on nothing
///   obs    = common
///   serve  = *                    # top: may depend on anything
///
///   [private]
///   simd/kernels.inc              # only includable from inside simd/
struct LayerTable {
  struct Entry {
    std::vector<std::string> deps;
    bool any = false;  // '*'
    int line = 0;      // declaration line in the table file
  };
  std::map<std::string, Entry> modules;
  std::map<std::string, int> private_headers;  // "module/header" -> table line
  std::vector<std::string> errors;             // parse problems, with line info
};

LayerTable parse_layer_table(const std::string& text);

/// Maps a path to its layering module: ".../src/<m>/..." -> "<m>", a file
/// directly under src/ -> "irf" (the public facade), and the tool/test trees
/// ("tools", "tests", "bench", "examples") to like-named pseudo-modules that
/// may include anything. Everything else -> "" (outside the model).
std::string module_of(const std::string& path);

/// True for modules the layering/env/lock passes govern (declared in the
/// table), false for the wildcard pseudo-modules and unknown paths.
bool is_declared_module(const LayerTable& table, const std::string& module);

struct Config {
  std::string layers_text;    // layering table content (required)
  std::string layers_path = "tools/analyze/layers.conf";  // for reporting
  std::string env_doc_text;   // env-contract doc; empty disables doc checks
  std::string env_doc_path = "docs/OBSERVABILITY.md";
  std::string baseline_text;  // committed baseline; empty = none
};

class Analyzer {
 public:
  explicit Analyzer(Config config);

  /// Scan one file. `path` should already be repo-relative (the driver
  /// relativizes) — it is used for module resolution, reporting, and
  /// baseline matching.
  void add_file(const std::string& path, const std::string& content);

  /// Run the cross-file passes. Call once, after the last add_file.
  void finish();

  /// Findings that survived suppressions and the baseline, sorted.
  const std::vector<Finding>& findings() const { return findings_; }
  /// Findings matched (and swallowed) by the committed baseline.
  const std::vector<Finding>& baselined() const { return baselined_; }
  int files_scanned() const { return files_scanned_; }

  /// Machine-readable exports (call after finish()).
  std::string findings_json() const;
  std::string obs_registry_json() const;
  /// Markdown skeleton of the env-contract table from the extracted getenv
  /// sites — the authoring aid for docs/OBSERVABILITY.md.
  std::string env_table_markdown() const;
  /// Baseline lines for the current findings (the --write-baseline output).
  std::string baseline_lines() const;

 private:
  struct FileRecord {
    std::string path;
    std::string module;  // per module_of()
    std::string stem;    // basename without extension (lock-site naming)
    std::string content;
    std::string code;     // code-only view
    std::string comments; // comment-only view (lock annotations live here)
  };

  struct EnvSite {
    std::string var;
    std::string file;
    int line = 0;
  };

  struct LockEdge {
    std::string from;
    std::string to;
    std::string file;  // first site observed
    int line = 0;
    bool observed = false;  // false = annotation-only edge
  };

  void run_layering();
  void run_env_contract();
  void run_lock_order();
  void report(Finding finding);

  Config config_;
  LayerTable table_;
  std::vector<FileRecord> files_;
  int files_scanned_ = 0;

  // Collected by the passes.
  std::vector<EnvSite> env_sites_;
  std::vector<LockEdge> lock_edges_;
  std::vector<std::pair<std::string, std::string>> lock_annotations_;
  // name -> (kind, sites) in first-seen order, from the lint engine.
  std::vector<std::pair<std::string, std::string>> obs_names_;  // name -> kind
  std::map<std::string, std::vector<std::pair<std::string, int>>> obs_sites_;

  std::set<std::string> baseline_keys_;  // "rule|file|key"
  std::vector<Finding> findings_;
  std::vector<Finding> baselined_;
};

/// Parses baseline text into match keys ("rule|file|key"). Lines are
/// `<rule> <file> <key>` with optional trailing `# justification`; '#' lines
/// and blanks are skipped.
std::set<std::string> parse_baseline(const std::string& text);

}  // namespace irf::analyze
