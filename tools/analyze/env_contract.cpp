#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "check/lexer.hpp"

namespace irf::analyze {

namespace {

bool identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Raw number-parse tokens banned near a getenv site. Env values must go
/// through the checked helpers in common/parse.hpp (full-string, no silent
/// prefix acceptance, range-checked) or explicit string comparison.
const char* const kRawParseTokens[] = {
    "atoi", "atol", "atoll", "atof",
    "std::atoi", "std::atol", "std::atoll", "std::atof",
    "std::stoi", "std::stol", "std::stoll", "std::stoul", "std::stoull",
    "std::stof", "std::stod", "std::stold",
};

/// Variables documented in the env-contract table: every `IRF_*` token that
/// appears backticked in a markdown table row of the doc.
std::set<std::string> documented_vars(const std::string& doc) {
  std::set<std::string> vars;
  std::istringstream in(doc);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '|') continue;
    std::size_t pos = 0;
    while ((pos = line.find("`IRF_", pos)) != std::string::npos) {
      const std::size_t begin = pos + 1;
      std::size_t end = begin;
      while (end < line.size() && identifier_char(line[end])) ++end;
      if (end < line.size() && line[end] == '`') vars.insert(line.substr(begin, end - begin));
      pos = end;
    }
  }
  return vars;
}

}  // namespace

void Analyzer::run_env_contract() {
  const std::set<std::string> documented = documented_vars(config_.env_doc_text);
  std::set<std::string> seen_vars;

  for (const FileRecord& f : files_) {
    // The contract governs library code: the tool/test trees may read
    // whatever they like (fixtures, harness knobs).
    if (f.path.compare(0, 4, "src/") != 0) continue;

    std::size_t pos = 0;
    while ((pos = f.code.find("getenv", pos)) != std::string::npos) {
      const std::size_t tok = pos;
      pos += 6;
      if (tok > 0 && identifier_char(f.code[tok - 1])) continue;
      std::size_t j = pos;
      while (j < f.code.size() && std::isspace(static_cast<unsigned char>(f.code[j]))) ++j;
      if (j >= f.code.size() || f.code[j] != '(') continue;
      ++j;
      while (j < f.content.size() &&
             std::isspace(static_cast<unsigned char>(f.content[j]))) {
        ++j;
      }
      const int line = check::lex::line_of(f.content, tok);
      if (j >= f.content.size() || f.content[j] != '"') {
        // Non-literal variable name: the doc contract can't be checked, which
        // is itself the violation.
        if (!check::lex::line_allows(f.content, line, "env-undocumented")) {
          report({f.path, line, "env-undocumented",
                  "getenv with a non-literal variable name cannot be checked against "
                  "the env contract; use a string literal",
                  "non-literal"});
        }
        continue;
      }
      const std::size_t begin = j + 1;
      const std::size_t end = f.content.find('"', begin);
      if (end == std::string::npos) continue;
      const std::string var = f.content.substr(begin, end - begin);
      if (var.compare(0, 4, "IRF_") != 0) continue;  // foreign vars are not ours to doc
      env_sites_.push_back({var, f.path, line});
      seen_vars.insert(var);

      if (documented.count(var) == 0 && !config_.env_doc_text.empty() &&
          !check::lex::line_allows(f.content, line, "env-undocumented")) {
        report({f.path, line, "env-undocumented",
                var + " is read here but missing from the env-contract table in " +
                    config_.env_doc_path,
                var});
      }

      // env-raw-parse: a raw atoi/stod-style parse in the getenv statement's
      // vicinity (same line through +8) — close enough that the value being
      // parsed is, with near certainty, this variable.
      const int last_line = line + 8;
      for (const char* token : kRawParseTokens) {
        const std::string tk = token;
        std::size_t tpos = 0;
        bool flagged = false;
        while (!flagged && (tpos = f.code.find(tk, tpos)) != std::string::npos) {
          const std::size_t at = tpos;
          tpos += tk.size();
          if (at > 0 && (identifier_char(f.code[at - 1]) || f.code[at - 1] == ':')) continue;
          if (tpos < f.code.size() && identifier_char(f.code[tpos])) continue;
          const int tline = check::lex::line_of(f.content, at);
          if (tline < line || tline > last_line) continue;
          if (check::lex::line_allows(f.content, tline, "env-raw-parse")) continue;
          report({f.path, tline, "env-raw-parse",
                  "raw " + tk + " near getenv(\"" + var +
                      "\"); parse env values with the checked helpers in "
                      "common/parse.hpp",
                  var + ":" + tk});
          flagged = true;
        }
      }
    }
  }

  // env-doc-stale: a documented variable nothing reads any more. Only
  // meaningful on a full-repo scan; the driver disables the doc by passing
  // empty text when scanning fixture subtrees.
  if (!config_.env_doc_text.empty() && !files_.empty()) {
    bool scanned_src = false;
    for (const FileRecord& f : files_) {
      if (f.path.compare(0, 4, "src/") == 0) {
        scanned_src = true;
        break;
      }
    }
    if (scanned_src) {
      for (const std::string& var : documented) {
        if (seen_vars.count(var) == 0) {
          report({config_.env_doc_path, 0, "env-doc-stale",
                  var + " is documented in the env-contract table but no src/ file "
                        "reads it",
                  var});
        }
      }
    }
  }
}

}  // namespace irf::analyze
