#include <cstdlib>

bool fixture_live() { return std::getenv("IRF_FIXTURE_LIVE") != nullptr; }
