#include <cstdlib>

// rule: env-raw-parse — atoi silently accepts "12abc" and overflows UB-style;
// env values must go through the checked helpers in common/parse.hpp.
int fixture_n() {
  const char* s = std::getenv("IRF_FIXTURE_N");
  if (s == nullptr) return 0;
  return std::atoi(s);
}
