#include <cstdlib>

// rule: env-undocumented — IRF_FIXTURE_KNOB is not in ENV.md's table.
bool fixture_knob() { return std::getenv("IRF_FIXTURE_KNOB") != nullptr; }

bool documented_knob() { return std::getenv("IRF_FIXTURE_DOCUMENTED") != nullptr; }
