// rule: layer-cycle (with b/b.cpp).
#include "b/b.hpp"

int a_impl() { return 1; }
