// rule: layer-cycle (with a/a.cpp).
#include "a/a.hpp"

int b_impl() { return 2; }
