// rule: layer-table — this module is missing from layers.conf.
int mystery() { return 3; }
