// rule: layering — base must not reach up into top.
#include "top/top.hpp"

int base_impl() { return 1; }
