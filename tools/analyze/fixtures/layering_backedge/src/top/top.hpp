#pragma once

inline int top_value() { return 2; }
