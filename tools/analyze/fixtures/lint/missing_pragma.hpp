// rule: pragma-once — this header intentionally lacks the guard.

inline int fixture_answer() { return 42; }
