// Seeded rule violations for the lint-pass self-test (analyze_fixture_lint
// ctest). Every block below MUST trip a rule; this file is never compiled or
// scanned in the normal pass (fixtures/ directories are skipped).

#include <cstring>

struct Widget {
  int value = 0;
};

int* make_raw() {
  int* leak = new int(42);  // rule: raw-new
  return leak;
}

void drop_raw(Widget* w) {
  delete w;  // rule: raw-delete
}

float type_pun(int bits) {
  // rule: reinterpret-cast — serialization must stage through memcpy instead.
  return *reinterpret_cast<float*>(&bits);
}

namespace obs {
void count(const char* name);
void record_histogram(const char* name, double value);
}

void bad_metric_name() {
  obs::count("Bad-Metric Name");  // rule: obs-name (uppercase, dash, space)
}

void bad_histogram_name() {
  obs::record_histogram("BadHistName", 1.0);  // rule: obs-name (uppercase)
}

void kind_conflict() {
  // rule: obs-name — same name registered as counter and histogram.
  obs::count("fixture.dup");
  obs::record_histogram("fixture.dup", 1.0);
}
