// rule: lock-cycle — regression shape of the PR4 pool race: configure() took
// config then job while the draining worker took job then config, and the two
// paths could deadlock under a concurrent reconfigure. The analyzer must flag
// the config_mutex_ <-> job_mutex_ cycle from the observed nesting alone.
#include <mutex>

struct Pool {
  std::mutex config_mutex_;
  std::mutex job_mutex_;
  int width = 0;
  int jobs = 0;

  void configure(int n) {
    std::lock_guard<std::mutex> cfg(config_mutex_);
    width = n;
    std::lock_guard<std::mutex> jobs_lock(job_mutex_);
    jobs = 0;
  }

  void drain_and_resize() {
    std::lock_guard<std::mutex> jobs_lock(job_mutex_);
    if (jobs == 0) {
      std::lock_guard<std::mutex> cfg(config_mutex_);
      width = 1;
    }
  }
};
