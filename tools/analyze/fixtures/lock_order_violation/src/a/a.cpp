// rule: lock-order — the annotation declares first < second, the code below
// acquires them in the opposite order.
// irf-lock-order: a.first_mu_ < a.second_mu_
#include <mutex>

struct Thing {
  std::mutex first_mu_;
  std::mutex second_mu_;
  int value = 0;

  void backwards() {
    std::lock_guard<std::mutex> second(second_mu_);
    std::lock_guard<std::mutex> first(first_mu_);
    ++value;
  }
};
