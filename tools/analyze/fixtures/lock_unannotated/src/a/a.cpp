// rule: lock-unannotated — nested locking with no irf-lock-order declaration.
#include <mutex>

struct Thing {
  std::mutex outer_mu_;
  std::mutex inner_mu_;
  int value = 0;

  void poke() {
    std::lock_guard<std::mutex> outer(outer_mu_);
    std::lock_guard<std::mutex> inner(inner_mu_);
    ++value;
  }
};
