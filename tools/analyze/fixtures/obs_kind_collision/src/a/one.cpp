namespace obs {
void count(const char* name);
}

void tick() { obs::count("fixture.collide"); }
