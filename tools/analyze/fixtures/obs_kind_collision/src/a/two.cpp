namespace obs {
void set_gauge(const char* name, double value);
}

// rule: obs-name — "fixture.collide" is a counter in one.cpp, a gauge here.
void level(double v) { obs::set_gauge("fixture.collide", v); }
