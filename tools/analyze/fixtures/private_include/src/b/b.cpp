// rule: private-include — the dep a is allowed, this specific header is not.
#include "a/impl.inc"

int b_impl() { return 4; }
