#include <mutex>

struct Arena {
  std::mutex outer_mu_;
  std::mutex inner_mu_;
  int* slab = nullptr;
  int used = 0;

  void grow() {
    // irf-analyze: allow(raw-new)
    slab = new int[64];
  }

  void release() {
    delete[] slab;  // irf-analyze: allow(raw-delete)
    slab = nullptr;
  }

  void touch() {
    // Baselined (see baseline.txt), not allow()-suppressed: exercises the
    // rule|file|key match path.
    std::lock_guard<std::mutex> outer(outer_mu_);
    std::lock_guard<std::mutex> inner(inner_mu_);
    ++used;
  }
};
