// The legacy irf-lint spelling must still suppress (compat contract).
namespace obs {
void count(const char* name);
}

void legacy() {
  obs::count("Legacy-Name");  // irf-lint: allow(obs-name)
}
