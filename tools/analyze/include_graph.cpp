#include <algorithm>
#include <functional>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "check/lexer.hpp"

namespace irf::analyze {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Module a quoted include target belongs to: "check/lexer.hpp" -> "check",
/// "irf.hpp" -> "irf" (the facade header sits directly under src/),
/// "analyze/analyzer.hpp" -> "" (tool-local, outside the layer model).
std::string target_module(const LayerTable& table, const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) {
    return target == "irf.hpp" ? "irf" : "";
  }
  const std::string head = target.substr(0, slash);
  return table.modules.count(head) > 0 ? head : "";
}

/// Tarjan SCC over a string digraph; returns the non-trivial components
/// (size > 1, or a self-loop), each sorted for deterministic reporting.
std::vector<std::vector<std::string>> find_cycles(
    const std::map<std::string, std::set<std::string>>& graph) {
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> cycles;
  int next = 0;

  std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack[v] = true;
    auto it = graph.find(v);
    if (it != graph.end()) {
      for (const std::string& w : it->second) {
        if (index.find(w) == index.end()) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> comp;
      std::string w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
      } while (w != v);
      const bool self_loop =
          comp.size() == 1 && graph.count(v) > 0 && graph.at(v).count(v) > 0;
      if (comp.size() > 1 || self_loop) {
        std::sort(comp.begin(), comp.end());
        cycles.push_back(std::move(comp));
      }
    }
  };

  for (const auto& [v, _] : graph) {
    if (index.find(v) == index.end()) strongconnect(v);
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

LayerTable parse_layer_table(const std::string& text) {
  LayerTable table;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = line.substr(1, line.size() - 2);
      if (section != "layers" && section != "private") {
        table.errors.push_back("line " + std::to_string(line_no) +
                               ": unknown section [" + section + "]");
      }
      continue;
    }
    if (section == "layers") {
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) {
        table.errors.push_back("line " + std::to_string(line_no) +
                               ": expected `module = deps...`, got '" + line + "'");
        continue;
      }
      const std::string name = trim(line.substr(0, eq));
      if (name.empty()) {
        table.errors.push_back("line " + std::to_string(line_no) + ": empty module name");
        continue;
      }
      if (table.modules.count(name) > 0) {
        table.errors.push_back("line " + std::to_string(line_no) + ": module '" + name +
                               "' declared twice");
        continue;
      }
      LayerTable::Entry entry;
      entry.line = line_no;
      std::istringstream deps(line.substr(eq + 1));
      std::string dep;
      while (deps >> dep) {
        if (dep == "*") {
          entry.any = true;
        } else {
          entry.deps.push_back(dep);
        }
      }
      if (entry.any && !entry.deps.empty()) {
        table.errors.push_back("line " + std::to_string(line_no) + ": module '" + name +
                               "' mixes '*' with explicit deps");
      }
      table.modules.emplace(name, std::move(entry));
    } else if (section == "private") {
      if (line.find('/') == std::string::npos) {
        table.errors.push_back("line " + std::to_string(line_no) +
                               ": private header must be `module/header`, got '" + line +
                               "'");
        continue;
      }
      table.private_headers.emplace(line, line_no);
    } else {
      table.errors.push_back("line " + std::to_string(line_no) +
                             ": content before any [section]");
    }
  }
  // Every explicit dep must itself be a declared module, and the declared
  // edges must form a DAG — the table is the architecture spec, so a broken
  // spec is an error even before looking at any source file.
  std::map<std::string, std::set<std::string>> declared;
  for (const auto& [name, entry] : table.modules) {
    for (const std::string& dep : entry.deps) {
      if (table.modules.count(dep) == 0) {
        table.errors.push_back("line " + std::to_string(entry.line) + ": module '" + name +
                               "' depends on undeclared module '" + dep + "'");
      } else {
        declared[name].insert(dep);
      }
    }
  }
  for (const std::vector<std::string>& cycle : find_cycles(declared)) {
    table.errors.push_back("declared dependency cycle: " + join(cycle, " -> "));
  }
  return table;
}

void Analyzer::run_layering() {
  std::map<std::string, std::set<std::string>> observed;  // module -> deps
  std::set<std::string> undeclared_reported;

  for (const FileRecord& f : files_) {
    if (f.module.empty()) continue;
    auto entry_it = table_.modules.find(f.module);
    // A src module missing from the table means the table is stale — report
    // once per module, at its first file.
    if (entry_it == table_.modules.end()) {
      if (f.path.compare(0, 4, "src/") == 0 &&
          undeclared_reported.insert(f.module).second) {
        report({f.path, 1, "layer-table",
                "module '" + f.module + "' is not declared in " + config_.layers_path,
                f.module});
      }
      continue;
    }
    const LayerTable::Entry& entry = entry_it->second;
    const std::set<std::string> allowed(entry.deps.begin(), entry.deps.end());

    // Quoted-include extraction: find the directive in the code view (so
    // includes inside comments/strings don't count), read the target from the
    // raw bytes (the code view blanks string literals).
    std::size_t pos = 0;
    while ((pos = f.code.find("#include", pos)) != std::string::npos) {
      std::size_t j = pos + 8;
      pos = j;
      while (j < f.content.size() &&
             (f.content[j] == ' ' || f.content[j] == '\t')) {
        ++j;
      }
      if (j >= f.content.size() || f.content[j] != '"') continue;  // <system> include
      const std::size_t begin = j + 1;
      const std::size_t end = f.content.find('"', begin);
      if (end == std::string::npos) continue;
      const std::string target = f.content.substr(begin, end - begin);
      const int line = check::lex::line_of(f.content, begin);

      // private-include applies to every module, wildcard or not.
      auto priv = table_.private_headers.find(target);
      if (priv != table_.private_headers.end()) {
        const std::string owner = target.substr(0, target.find('/'));
        if (owner != f.module && !check::lex::line_allows(f.content, line, "private-include")) {
          report({f.path, line, "private-include",
                  "\"" + target + "\" is private to module '" + owner +
                      "' (declared in " + config_.layers_path + ")",
                  target});
        }
      }

      const std::string to = target_module(table_, target);
      if (to.empty() || to == f.module) continue;
      observed[f.module].insert(to);
      if (entry.any || allowed.count(to) > 0) continue;
      if (check::lex::line_allows(f.content, line, "layering")) continue;
      report({f.path, line, "layering",
              "module '" + f.module + "' must not include module '" + to +
                  "' (\"" + target + "\"); allowed deps: {" +
                  join(entry.deps, ", ") + "}",
              f.module + "->" + to});
    }
  }

  for (const std::vector<std::string>& cycle : find_cycles(observed)) {
    int line = 0;
    auto it = table_.modules.find(cycle.front());
    if (it != table_.modules.end()) line = it->second.line;
    report({config_.layers_path, line, "layer-cycle",
            "include cycle between modules: " + join(cycle, " -> ") + " -> " +
                cycle.front(),
            join(cycle, "+")});
  }
}

}  // namespace irf::analyze
