#include <algorithm>
#include <cctype>
#include <functional>
#include <queue>
#include <set>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "check/lexer.hpp"

namespace irf::analyze {

namespace {

bool identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool valid_lock_name(const std::string& s) {
  if (s.empty()) return false;
  bool dot_ok = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '.') {
      if (i == 0 || i + 1 == s.size() || s[i - 1] == '.') return false;
      dot_ok = true;
    } else if (!identifier_char(c)) {
      return false;
    }
  }
  return dot_ok || !s.empty();
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Last identifier in a lock-argument expression: "this->cache_mu_" ->
/// "cache_mu_", "other.m" -> "m". Empty for non-lvalue args.
std::string final_identifier(const std::string& expr) {
  const std::string e = trim(expr);
  if (e.empty()) return "";
  std::size_t end = e.size();
  while (end > 0 && !identifier_char(e[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && identifier_char(e[begin - 1])) --begin;
  return e.substr(begin, end - begin);
}

bool is_tag_arg(const std::string& id) {
  return id == "defer_lock" || id == "adopt_lock" || id == "try_to_lock";
}

const char* const kLockTokens[] = {"lock_guard", "unique_lock", "scoped_lock"};

struct LockSite {
  std::vector<std::string> names;  // qualified "<stem>.<member>"
  std::size_t pos = 0;             // position of the token in the file
  int line = 0;
  int depth = 0;  // brace depth at the declaration (set during the walk)
};

/// Brace depth at every byte of the code view, so lock sites can be replayed
/// in textual order with lexical scope.
std::vector<int> brace_depths(const std::string& code) {
  std::vector<int> depth(code.size() + 1, 0);
  int d = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    depth[i] = d;
    if (code[i] == '{') ++d;
    else if (code[i] == '}') d = std::max(0, d - 1);
  }
  depth[code.size()] = d;
  return depth;
}

}  // namespace

void Analyzer::run_lock_order() {
  // ---- collect annotations (comment view) and lock sites (code view) ----
  std::set<std::pair<std::string, std::string>> annotated;
  std::set<std::pair<std::string, std::string>> observed_set;

  for (const FileRecord& f : files_) {
    if (f.path.compare(0, 4, "src/") != 0) continue;

    // Annotations: `// irf-lock-order: a < b < c` declares the chain a<b,
    // b<c (checks use the transitive closure, so a<c is implied).
    std::size_t apos = 0;
    while ((apos = f.comments.find("irf-lock-order:", apos)) != std::string::npos) {
      const std::size_t tail = apos + 15;
      apos = tail;
      const std::size_t eol = f.comments.find('\n', tail);
      const std::string rest = f.comments.substr(
          tail, eol == std::string::npos ? std::string::npos : eol - tail);
      const int line = check::lex::line_of(f.content, tail);
      std::vector<std::string> chain;
      bool ok = true;
      // split on '<'
      std::size_t start = 0;
      std::vector<std::string> raw_parts;
      for (std::size_t i = 0; i <= rest.size(); ++i) {
        if (i == rest.size() || rest[i] == '<') {
          raw_parts.push_back(rest.substr(start, i - start));
          start = i + 1;
        }
      }
      for (const std::string& rp : raw_parts) {
        const std::string name = trim(rp);
        if (!valid_lock_name(name) || name.find('.') == std::string::npos) {
          ok = false;
          break;
        }
        chain.push_back(name);
      }
      if (!ok || chain.size() < 2) {
        report({f.path, line, "lock-order",
                "malformed irf-lock-order annotation; expected "
                "`irf-lock-order: <file.mutex> < <file.mutex> [< ...]`",
                "annotation"});
        continue;
      }
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        if (annotated.emplace(chain[i], chain[i + 1]).second) {
          lock_annotations_.emplace_back(chain[i], chain[i + 1]);
        }
      }
    }

    // Lock sites: std::lock_guard / unique_lock / scoped_lock declarations.
    std::vector<LockSite> sites;
    for (const char* token : kLockTokens) {
      const std::string tk = token;
      std::size_t pos = 0;
      while ((pos = f.code.find(tk, pos)) != std::string::npos) {
        const std::size_t tok_at = pos;
        pos += tk.size();
        if (tok_at > 0 && identifier_char(f.code[tok_at - 1])) continue;
        std::size_t j = pos;
        // Optional template argument list.
        if (j < f.code.size() && f.code[j] == '<') {
          int angle = 0;
          while (j < f.code.size()) {
            if (f.code[j] == '<') ++angle;
            else if (f.code[j] == '>' && --angle == 0) { ++j; break; }
            ++j;
          }
        }
        while (j < f.code.size() && std::isspace(static_cast<unsigned char>(f.code[j]))) ++j;
        // Variable name (required for a declaration; skips using-decls etc).
        std::size_t name_len = 0;
        while (j + name_len < f.code.size() && identifier_char(f.code[j + name_len])) {
          ++name_len;
        }
        if (name_len == 0) continue;
        j += name_len;
        while (j < f.code.size() && std::isspace(static_cast<unsigned char>(f.code[j]))) ++j;
        if (j >= f.code.size() || (f.code[j] != '(' && f.code[j] != '{')) continue;
        const char open = f.code[j];
        const char close = open == '(' ? ')' : '}';
        const std::size_t args_begin = j + 1;
        int paren = 1;
        std::size_t k = args_begin;
        std::vector<std::string> args;
        std::size_t arg_start = args_begin;
        while (k < f.code.size() && paren > 0) {
          const char c = f.code[k];
          if (c == open) ++paren;
          else if (c == close) {
            if (--paren == 0) {
              args.push_back(f.code.substr(arg_start, k - arg_start));
              break;
            }
          } else if (c == ',' && paren == 1) {
            args.push_back(f.code.substr(arg_start, k - arg_start));
            arg_start = k + 1;
          }
          ++k;
        }
        if (args.empty()) continue;
        LockSite site;
        site.pos = tok_at;
        site.line = check::lex::line_of(f.content, tok_at);
        const std::size_t take = tk == "scoped_lock" ? args.size() : std::size_t{1};
        for (std::size_t a = 0; a < take && a < args.size(); ++a) {
          const std::string id = final_identifier(args[a]);
          if (id.empty() || is_tag_arg(id)) continue;
          site.names.push_back(f.stem + "." + id);
        }
        if (!site.names.empty()) sites.push_back(std::move(site));
      }
    }
    if (sites.empty()) continue;
    std::sort(sites.begin(), sites.end(),
              [](const LockSite& a, const LockSite& b) { return a.pos < b.pos; });

    // ---- lexical scope replay: a guard lives until its block closes ----
    // A guard declared at brace depth d dies as soon as the depth dips below
    // d, so between consecutive sites we pop every guard deeper than the
    // minimum depth reached in the interval. This keeps sibling blocks at
    // equal depth from appearing nested.
    const std::vector<int> depth = brace_depths(f.code);
    struct Held {
      std::string name;
      int depth;
    };
    std::vector<Held> held;
    std::size_t prev_pos = 0;
    for (LockSite& site : sites) {
      site.depth = depth[site.pos];
      int min_depth = site.depth;
      for (std::size_t i = prev_pos; i <= site.pos; ++i) {
        min_depth = std::min(min_depth, depth[i]);
      }
      prev_pos = site.pos;
      while (!held.empty() && held.back().depth > min_depth) held.pop_back();
      for (const Held& h : held) {
        for (const std::string& name : site.names) {
          if (h.name == name) continue;
          if (observed_set.emplace(h.name, name).second) {
            lock_edges_.push_back({h.name, name, f.path, site.line, true});
          }
        }
      }
      for (const std::string& name : site.names) {
        held.push_back({name, site.depth});
      }
    }
  }

  for (const auto& [from, to] : annotated) {
    lock_edges_.push_back({from, to, config_.layers_path, 0, false});
  }

  // ---- transitive closure of the annotation graph ----
  std::map<std::string, std::set<std::string>> ann_adj;
  for (const auto& [from, to] : annotated) ann_adj[from].insert(to);
  auto reachable = [&ann_adj](const std::string& from, const std::string& to) {
    std::set<std::string> seen{from};
    std::queue<std::string> q;
    q.push(from);
    while (!q.empty()) {
      const std::string v = q.front();
      q.pop();
      if (v == to) return true;
      auto it = ann_adj.find(v);
      if (it == ann_adj.end()) continue;
      for (const std::string& w : it->second) {
        if (seen.insert(w).second) q.push(w);
      }
    }
    return false;
  };

  // ---- classify observed edges ----
  for (const LockEdge& e : lock_edges_) {
    if (!e.observed) continue;
    if (reachable(e.from, e.to)) continue;  // matches the declared order
    const auto raw_line = [&]() -> const FileRecord* {
      for (const FileRecord& f : files_) {
        if (f.path == e.file) return &f;
      }
      return nullptr;
    }();
    if (raw_line != nullptr &&
        check::lex::line_allows(raw_line->content, e.line, "lock-order")) {
      continue;
    }
    if (reachable(e.to, e.from)) {
      report({e.file, e.line, "lock-order",
              "acquires " + e.to + " while holding " + e.from +
                  ", but the declared order is " + e.to + " < " + e.from,
              e.from + "->" + e.to});
    } else {
      report({e.file, e.line, "lock-unannotated",
              "nested locking " + e.from + " -> " + e.to +
                  " has no `// irf-lock-order: " + e.from + " < " + e.to +
                  "` annotation",
              e.from + "->" + e.to});
    }
  }

  // ---- cycle check over annotation ∪ observed edges ----
  std::map<std::string, std::set<std::string>> all_adj;
  for (const LockEdge& e : lock_edges_) all_adj[e.from].insert(e.to);
  // (Tarjan, duplicated from include_graph to keep the passes standalone.)
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next = 0;
  std::vector<std::vector<std::string>> cycles;
  std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack[v] = true;
    auto it = all_adj.find(v);
    if (it != all_adj.end()) {
      for (const std::string& w : it->second) {
        if (index.find(w) == index.end()) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> comp;
      std::string w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
      } while (w != v);
      const bool self_loop =
          comp.size() == 1 && all_adj.count(v) > 0 && all_adj.at(v).count(v) > 0;
      if (comp.size() > 1 || self_loop) {
        std::sort(comp.begin(), comp.end());
        cycles.push_back(std::move(comp));
      }
    }
  };
  for (const auto& [v, _] : all_adj) {
    if (index.find(v) == index.end()) strongconnect(v);
  }
  std::sort(cycles.begin(), cycles.end());
  for (const std::vector<std::string>& cycle : cycles) {
    // Anchor the report at the first observed edge inside the cycle.
    std::string file = config_.layers_path;
    int line = 0;
    for (const LockEdge& e : lock_edges_) {
      if (e.observed && std::find(cycle.begin(), cycle.end(), e.from) != cycle.end() &&
          std::find(cycle.begin(), cycle.end(), e.to) != cycle.end()) {
        file = e.file;
        line = e.line;
        break;
      }
    }
    std::string joined;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i) joined += " -> ";
      joined += cycle[i];
    }
    std::string key;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i) key += "+";
      key += cycle[i];
    }
    report({file, line, "lock-cycle",
            "lock-order cycle (potential deadlock): " + joined + " -> " + cycle.front(),
            key});
  }
}

}  // namespace irf::analyze
