/// \file main.cpp
/// Driver for irf_analyze (see analyzer.hpp). All filesystem IO lives here;
/// the analyzer itself is fed in-memory contents so tests can drive it
/// without a disk layout.
///
/// Exit codes: 0 = clean (or --expect satisfied), 1 = findings (or --expect
/// unsatisfied), 2 = usage / IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "check/lint.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string layers;
  std::string env_doc;
  bool no_env_doc = false;
  std::string baseline;
  std::string json_path;
  std::string obs_registry_path;
  bool env_table = false;
  bool write_baseline = false;
  std::string relative_to;
  std::string expect_rule;
  bool list_rules = false;
  bool quiet = false;
  std::vector<std::string> roots;
};

int usage(std::ostream& out) {
  out << "usage: irf_analyze [options] [root...]\n"
         "  --layers <file>        layering table (default <root>/tools/analyze/layers.conf)\n"
         "  --env-doc <file>       env-contract doc (default <root>/docs/OBSERVABILITY.md)\n"
         "  --no-env-doc           disable the env-doc checks (fixture trees)\n"
         "  --baseline <file>      committed baseline of accepted findings\n"
         "  --json <file|->        write the irf.analyze.v1 findings report\n"
         "  --obs-registry <file|->  write the irf.obs_names.v1 registry\n"
         "  --env-table            print a regenerated env-contract markdown table\n"
         "  --write-baseline       print baseline lines for the current findings\n"
         "  --relative-to <dir>    report paths relative to this dir (default: the root)\n"
         "  --expect <rule>        fixture mode: succeed iff >=1 finding of <rule>\n"
         "  --list-rules           print every rule name and exit\n"
         "  --quiet                suppress per-finding lines\n";
  return 2;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool skip_dir(const std::string& name) {
  if (name == ".git" || name == "fixtures" || name == "lint_fixtures") return true;
  return name.compare(0, 5, "build") == 0;
}

bool scan_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".inc";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    out.push_back(root);
    return;
  }
  auto it = fs::recursive_directory_iterator(root);
  for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
    if (it->is_directory()) {
      if (skip_dir(it->path().filename().string())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && scan_ext(it->path())) out.push_back(it->path());
  }
}

std::string relativize(const fs::path& p, const fs::path& base) {
  std::error_code ec;
  const std::string rel = fs::relative(p, base, ec).generic_string();
  if (ec || rel.empty() || rel.compare(0, 2, "..") == 0) return p.generic_string();
  return rel;
}

bool write_output(const std::string& target, const std::string& content) {
  if (target == "-") {
    std::cout << content;
    return true;
  }
  std::ofstream out(target, std::ios::binary);
  if (!out) return false;
  out << content;
  return bool(out << std::flush);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (arg == "--layers") {
      if (!value(opt.layers)) return usage(std::cerr);
    } else if (arg == "--env-doc") {
      if (!value(opt.env_doc)) return usage(std::cerr);
    } else if (arg == "--no-env-doc") {
      opt.no_env_doc = true;
    } else if (arg == "--baseline") {
      if (!value(opt.baseline)) return usage(std::cerr);
    } else if (arg == "--json") {
      if (!value(opt.json_path)) return usage(std::cerr);
    } else if (arg == "--obs-registry") {
      if (!value(opt.obs_registry_path)) return usage(std::cerr);
    } else if (arg == "--env-table") {
      opt.env_table = true;
    } else if (arg == "--write-baseline") {
      opt.write_baseline = true;
    } else if (arg == "--relative-to") {
      if (!value(opt.relative_to)) return usage(std::cerr);
    } else if (arg == "--expect") {
      if (!value(opt.expect_rule)) return usage(std::cerr);
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "irf_analyze: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      opt.roots.push_back(arg);
    }
  }

  if (opt.list_rules) {
    for (const std::string& r : irf::check::lint::rule_names()) std::cout << r << "\n";
    for (const char* r : {"layering", "layer-cycle", "layer-table", "private-include",
                          "env-undocumented", "env-raw-parse", "env-doc-stale",
                          "lock-unannotated", "lock-order", "lock-cycle"}) {
      std::cout << r << "\n";
    }
    return 0;
  }

  if (opt.roots.empty()) opt.roots.push_back(".");
  const fs::path first_root = opt.roots.front();
  const fs::path rel_base =
      opt.relative_to.empty()
          ? (fs::is_directory(first_root) ? first_root : first_root.parent_path())
          : fs::path(opt.relative_to);

  if (opt.layers.empty()) {
    const fs::path candidate = rel_base / "tools" / "analyze" / "layers.conf";
    if (fs::exists(candidate)) opt.layers = candidate.string();
  }
  if (opt.env_doc.empty() && !opt.no_env_doc) {
    const fs::path candidate = rel_base / "docs" / "OBSERVABILITY.md";
    if (fs::exists(candidate)) opt.env_doc = candidate.string();
  }

  irf::analyze::Config config;
  if (!opt.layers.empty()) {
    if (!read_file(opt.layers, config.layers_text)) {
      std::cerr << "irf_analyze: cannot read layers table " << opt.layers << "\n";
      return 2;
    }
    config.layers_path = relativize(opt.layers, rel_base);
  } else {
    std::cerr << "irf_analyze: no layering table (pass --layers)\n";
    return 2;
  }
  if (!opt.no_env_doc && !opt.env_doc.empty()) {
    if (!read_file(opt.env_doc, config.env_doc_text)) {
      std::cerr << "irf_analyze: cannot read env doc " << opt.env_doc << "\n";
      return 2;
    }
    config.env_doc_path = relativize(opt.env_doc, rel_base);
  }
  if (!opt.baseline.empty() && !read_file(opt.baseline, config.baseline_text)) {
    std::cerr << "irf_analyze: cannot read baseline " << opt.baseline << "\n";
    return 2;
  }

  irf::analyze::Analyzer analyzer(std::move(config));

  std::vector<fs::path> paths;
  for (const std::string& root : opt.roots) {
    if (!fs::exists(root)) {
      std::cerr << "irf_analyze: no such path: " << root << "\n";
      return 2;
    }
    collect(root, paths);
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::string content;
    if (!read_file(p, content)) {
      std::cerr << "irf_analyze: cannot read " << p << "\n";
      return 2;
    }
    analyzer.add_file(relativize(p, rel_base), content);
  }
  analyzer.finish();

  if (opt.env_table) {
    std::cout << analyzer.env_table_markdown();
    return 0;
  }
  if (opt.write_baseline) {
    std::cout << analyzer.baseline_lines();
    return 0;
  }

  if (!opt.quiet) {
    for (const irf::analyze::Finding& f : analyzer.findings()) {
      std::cout << f.str() << "\n";
    }
  }

  if (!opt.json_path.empty() && !write_output(opt.json_path, analyzer.findings_json())) {
    std::cerr << "irf_analyze: cannot write " << opt.json_path << "\n";
    return 2;
  }
  if (!opt.obs_registry_path.empty() &&
      !write_output(opt.obs_registry_path, analyzer.obs_registry_json())) {
    std::cerr << "irf_analyze: cannot write " << opt.obs_registry_path << "\n";
    return 2;
  }

  if (!opt.expect_rule.empty()) {
    int hits = 0;
    for (const irf::analyze::Finding& f : analyzer.findings()) {
      if (f.rule == opt.expect_rule) ++hits;
    }
    if (hits == 0) {
      std::cerr << "irf_analyze: expected at least one '" << opt.expect_rule
                << "' finding, got none (" << analyzer.findings().size()
                << " total findings)\n";
      return 1;
    }
    std::cerr << "irf_analyze: matched " << hits << " '" << opt.expect_rule
              << "' finding(s) as expected\n";
    return 0;
  }

  std::cerr << "irf_analyze: " << analyzer.files_scanned() << " files, "
            << analyzer.findings().size() << " finding(s), "
            << analyzer.baselined().size() << " baselined\n";
  return analyzer.findings().empty() ? 0 : 1;
}
