#include "cli_parser.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace irf::cli {

const std::vector<FlagSpec>& global_flags() {
  static const std::vector<FlagSpec> kGlobal = {
      {"trace-out", "", "FILE.json", "write Chrome trace-event spans for the run"},
      {"metrics-out", "", "FILE.json", "write the metrics snapshot for the run"},
      {"prom-out", "", "FILE.prom", "write the metrics snapshot in Prometheus text format"},
      {"help", "", "", "show this help and exit"},
  };
  return kGlobal;
}

std::string ParsedArgs::flag(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int ParsedArgs::flag_int(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(text, &consumed);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" + text + "'");
  }
  if (consumed != text.size()) {
    throw ConfigError("flag --" + name + " expects an integer, got '" + text + "'");
  }
  return value;
}

int ParsedArgs::flag_int_at_least(const std::string& name, int fallback,
                                  int min_value) const {
  const int value = flag_int(name, fallback);
  if (value < min_value) {
    throw ConfigError("flag --" + name + " must be >= " + std::to_string(min_value) +
                      ", got " + std::to_string(value));
  }
  return value;
}

double ParsedArgs::flag_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects a number, got '" + text + "'");
  }
  if (consumed != text.size() || !std::isfinite(value) || value < 0.0) {
    throw ConfigError("flag --" + name + " expects a finite non-negative number, got '" +
                      text + "'");
  }
  return value;
}

const std::string& ParsedArgs::require(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    throw ConfigError("flag --" + name + " is required");
  }
  return it->second;
}

void ParsedArgs::set(const std::string& name, std::string value) {
  values_[name] = std::move(value);
}

namespace {

/// Resolve a spelled flag against the command + global tables; returns the
/// matching spec and notes whether the deprecated alias was used.
const FlagSpec* find_flag(const CommandSpec& spec, const std::string& key,
                          bool* via_alias) {
  for (const std::vector<FlagSpec>* table : {&spec.flags, &global_flags()}) {
    for (const FlagSpec& f : *table) {
      if (f.name == key) {
        *via_alias = false;
        return &f;
      }
      if (!f.alias.empty() && f.alias == key) {
        *via_alias = true;
        return &f;
      }
    }
  }
  return nullptr;
}

}  // namespace

ParsedArgs parse_command_line(const CommandSpec& spec, int argc, char** argv,
                              int first) {
  ParsedArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      if (spec.positional.empty()) {
        throw ConfigError(spec.name + ": unexpected argument '" + a + "'");
      }
      args.positional.push_back(a);
      continue;
    }
    const std::string key = a.substr(2);
    bool via_alias = false;
    const FlagSpec* flag = find_flag(spec, key, &via_alias);
    if (flag == nullptr) {
      throw ConfigError(spec.name + ": unknown flag --" + key +
                        " (see 'irf_cli " + spec.name + " --help')");
    }
    if (via_alias) {
      args.note_deprecation("--" + key + " is deprecated; use --" + flag->name);
    }
    if (flag->value_name.empty()) {
      args.set(flag->name, "1");
      continue;
    }
    if (i + 1 >= argc) {
      throw ConfigError("flag --" + flag->name + " needs a value");
    }
    args.set(flag->name, argv[++i]);
  }
  return args;
}

std::string usage_line(const CommandSpec& spec) {
  std::ostringstream out;
  out << spec.name;
  if (!spec.positional.empty()) out << " " << spec.positional;
  for (const FlagSpec& f : spec.flags) {
    out << " [--" << f.name;
    if (!f.value_name.empty()) out << " " << f.value_name;
    out << "]";
  }
  return out.str();
}

std::string help_text(const CommandSpec& spec) {
  std::ostringstream out;
  out << "usage: irf_cli " << usage_line(spec) << "\n";
  if (!spec.summary.empty()) out << spec.summary << "\n";
  auto print_table = [&out](const std::vector<FlagSpec>& flags) {
    for (const FlagSpec& f : flags) {
      std::string left = "  --" + f.name;
      if (!f.value_name.empty()) left += " " + f.value_name;
      out << left;
      for (std::size_t pad = left.size(); pad < 30; ++pad) out << ' ';
      out << f.help;
      if (!f.alias.empty()) out << " (deprecated alias: --" << f.alias << ")";
      out << "\n";
    }
  };
  if (!spec.flags.empty()) {
    out << "options:\n";
    print_table(spec.flags);
  }
  out << "global options:\n";
  print_table(global_flags());
  return out.str();
}

}  // namespace irf::cli
