#pragma once

/// \file cli_parser.hpp
/// Table-driven command-line parsing shared by every irf_cli subcommand.
/// Each command declares one CommandSpec table; the parser enforces it
/// (unknown flags are errors, values are validated centrally) and the
/// --help text is generated from the same table, so flags, validation and
/// documentation cannot drift apart. Canonical flag names are kebab-case;
/// pre-redesign spellings stay usable as deprecated aliases.

#include <map>
#include <string>
#include <vector>

namespace irf::cli {

struct FlagSpec {
  std::string name;        ///< canonical kebab-case name (no leading --)
  std::string alias;       ///< deprecated old spelling; "" = none
  std::string value_name;  ///< metavar shown in help; "" = boolean flag
  std::string help;        ///< one-line description
};

struct CommandSpec {
  std::string name;
  std::string positional;  ///< metavar of the positional arg; "" = none
  std::string summary;     ///< one-line description for the command list
  std::vector<FlagSpec> flags;  ///< command flags (global flags are implied)
};

/// Flags every subcommand accepts (telemetry outputs, --help).
const std::vector<FlagSpec>& global_flags();

/// Parse result. Lookup is always by canonical name; values given via a
/// deprecated alias land under the canonical key.
class ParsedArgs {
 public:
  std::vector<std::string> positional;

  bool has(const std::string& name) const { return values_.count(name) > 0; }
  std::string flag(const std::string& name, const std::string& fallback = "") const;

  /// Integer flag with a usage-style error on non-numeric or out-of-range
  /// values (std::stoi alone would escape as an uncaught exception).
  int flag_int(const std::string& name, int fallback) const;
  /// flag_int plus a lower bound (e.g. --pixels must be positive).
  int flag_int_at_least(const std::string& name, int fallback, int min_value) const;
  /// Finite, non-negative floating-point flag.
  double flag_double(const std::string& name, double fallback) const;

  /// Require a value-carrying flag to be present.
  const std::string& require(const std::string& name) const;

  /// Deprecation notes collected during parsing ("--px is deprecated; use
  /// --pixels"), for the caller to log.
  const std::vector<std::string>& deprecations() const { return deprecations_; }

  void set(const std::string& name, std::string value);
  void note_deprecation(std::string note) { deprecations_.push_back(std::move(note)); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> deprecations_;
};

/// Parse argv[first..) against `spec` (+ global flags). Throws
/// irf::ConfigError on unknown flags, missing values, or a positional
/// argument the command does not take.
ParsedArgs parse_command_line(const CommandSpec& spec, int argc, char** argv,
                              int first);

/// Generated from the spec tables: "usage:" line plus per-flag help.
std::string help_text(const CommandSpec& spec);

/// One-line usage summary for the command index.
std::string usage_line(const CommandSpec& spec);

}  // namespace irf::cli
