// irf_cli — command-line front end for the IR-Fusion library.
//
//   irf_cli generate --out DIR [--fake N] [--real M] [--px P] [--seed S]
//       Generate a synthetic design set, golden-solve it, and export it in
//       the ICCAD-2023 layout (netlist.sp + image CSVs per design).
//
//   irf_cli solve NETLIST.sp [--iters K] [--px P] [--out MAP.csv]
//       Parse a SPICE PG deck and solve it with AMG-PCG. Without --iters the
//       solve runs to 1e-10 (golden); with --iters it runs exactly K rough
//       iterations. Optionally writes the bottom-layer IR map as CSV.
//
//   irf_cli train --designs DIR --out MODEL.bin [--epochs E] [--px P]
//                 [--iters K] [--seed S]
//       Load every <DIR>/*/netlist.sp (directory names starting with "real"
//       are treated as hard designs; any design named real_<i> with odd i is
//       held out for validation), fit the IR-Fusion pipeline and save it.
//
//   irf_cli analyze --model MODEL.bin NETLIST.sp [--out MAP.csv]
//       Restore a trained pipeline and run end-to-end analysis on a deck.
//
//   irf_cli json-check FILE.json
//       Validate that FILE.json parses as JSON (used by CI to check the
//       telemetry artifacts; exits non-zero on malformed input).
//
// Every subcommand additionally accepts the telemetry flags
//   --trace-out FILE.json    write a Chrome trace-event file for the run
//   --metrics-out FILE.json  write the metrics snapshot for the run
// and honors IRF_TRACE / IRF_METRICS / IRF_LOG_LEVEL (docs/OBSERVABILITY.md).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/image_io.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "features/extractor.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "pg/generator.hpp"
#include "pg/solve.hpp"
#include "spice/parser.hpp"
#include "train/iccad_io.hpp"

namespace {

using namespace irf;
namespace fs = std::filesystem;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& name, const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  /// Integer flag with a usage-style error on non-numeric or out-of-range
  /// values (std::stoi alone would escape as an uncaught exception).
  int flag_int(const std::string& name, int fallback) const {
    auto it = flags.find(name);
    if (it == flags.end()) return fallback;
    const std::string& text = it->second;
    std::size_t consumed = 0;
    int value = 0;
    try {
      value = std::stoi(text, &consumed);
    } catch (const std::exception&) {
      throw ConfigError("flag --" + name + " expects an integer, got '" + text + "'");
    }
    if (consumed != text.size()) {
      throw ConfigError("flag --" + name + " expects an integer, got '" + text + "'");
    }
    return value;
  }
  /// flag_int plus a lower bound (e.g. --px must be a positive pixel count).
  int flag_int_at_least(const std::string& name, int fallback, int min_value) const {
    const int value = flag_int(name, fallback);
    if (value < min_value) {
      throw ConfigError("flag --" + name + " must be >= " + std::to_string(min_value) +
                        ", got " + std::to_string(value));
    }
    return value;
  }
  bool has(const std::string& name) const { return flags.count(name) > 0; }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      if (i + 1 >= argc) throw ConfigError("flag --" + key + " needs a value");
      args.flags[key] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// Build a PgDesign from a parsed deck, inferring extents from coordinates.
pg::PgDesign design_from_deck(const std::string& path, pg::DesignKind kind) {
  pg::PgDesign design;
  design.name = fs::path(path).parent_path().filename().string();
  if (design.name.empty()) design.name = fs::path(path).stem().string();
  design.kind = kind;
  design.netlist = spice::parse_file(path);
  design.vdd = design.netlist.voltage_sources().front().volts;
  std::int64_t w = 0, h = 0;
  for (spice::NodeId id = 0; id < design.netlist.num_nodes(); ++id) {
    if (const auto& c = design.netlist.node_coords(id)) {
      w = std::max(w, c->x_nm);
      h = std::max(h, c->y_nm);
    }
  }
  if (w == 0 || h == 0) {
    throw ParseError("deck " + path + " has no coordinate-named nodes");
  }
  design.width_nm = w;
  design.height_nm = h;
  return design;
}

int cmd_generate(const Args& args) {
  const std::string out = args.flag("out");
  if (out.empty()) throw ConfigError("generate: --out DIR is required");
  ScaleConfig cfg = make_scale_config(Scale::kCi);
  cfg.num_fake_designs = args.flag_int_at_least("fake", cfg.num_fake_designs, 0);
  cfg.num_real_designs = args.flag_int_at_least("real", cfg.num_real_designs, 0);
  cfg.image_size = args.flag_int_at_least("px", cfg.image_size, 8);
  cfg.seed = static_cast<std::uint64_t>(args.flag_int("seed", 1));
  obs::info() << "generating " << cfg.num_fake_designs << " fake + "
              << cfg.num_real_designs << " real designs at " << cfg.image_size
              << " px...";
  train::DesignSet set = train::build_design_set(cfg);
  std::vector<std::string> dirs = train::export_design_set(set, out);
  obs::info() << "wrote " << dirs.size() << " design directories under " << out;
  return 0;
}

int cmd_solve(const Args& args) {
  if (args.positional.empty()) throw ConfigError("solve: need a netlist path");
  pg::PgDesign design = design_from_deck(args.positional[0], pg::DesignKind::kReal);
  pg::PgSolver solver(design);
  const int iters = args.flag_int_at_least("iters", 0, 0);
  const int px = args.flag_int_at_least("px", 64, 1);
  pg::PgSolution sol = iters > 0 ? solver.solve_rough(iters) : solver.solve_golden();
  // Rasterize the bottom-layer map for the hotspot summary (and --out).
  const GridF map = features::label_map(design, sol, px);
  double worst = 0.0;
  for (double v : sol.ir_drop) worst = std::max(worst, v);
  obs::info() << design.netlist.num_nodes() << " nodes | "
              << (iters > 0 ? "rough " + std::to_string(iters) + "-iteration"
                            : "golden (" + std::to_string(sol.iterations) + " iterations)")
              << " solve | worst IR drop " << worst * 1e3 << " mV";
  obs::verbose() << "map hotspot (" << px << "x" << px << " px): " << map.max_value() * 1e3
                 << " mV | setup " << sol.setup_seconds << " s | iterate "
                 << sol.solve_seconds << " s";
  const std::string out = args.flag("out");
  if (!out.empty()) {
    write_csv(map, out);
    obs::info() << "bottom-layer IR map (" << px << "x" << px << ") written to " << out;
  }
  return 0;
}

int cmd_train(const Args& args) {
  const std::string dir = args.flag("designs");
  const std::string out = args.flag("out");
  if (dir.empty() || out.empty()) {
    throw ConfigError("train: --designs DIR and --out MODEL.bin are required");
  }
  const int px = args.flag_int_at_least("px", 32, 8);

  std::vector<std::string> deck_dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory() && fs::exists(entry.path() / "netlist.sp")) {
      deck_dirs.push_back(entry.path().string());
    }
  }
  std::sort(deck_dirs.begin(), deck_dirs.end());
  if (deck_dirs.empty()) throw ConfigError("train: no */netlist.sp under " + dir);

  std::vector<train::PreparedDesign> train_designs;
  std::vector<train::PreparedDesign> held_out;
  int real_index = 0;
  for (const std::string& d : deck_dirs) {
    const std::string name = fs::path(d).filename().string();
    const bool is_real = name.rfind("real", 0) == 0;
    train::PreparedDesign p;
    p.design = std::make_unique<pg::PgDesign>(design_from_deck(
        (fs::path(d) / "netlist.sp").string(),
        is_real ? pg::DesignKind::kReal : pg::DesignKind::kFake));
    p.solver = std::make_unique<pg::PgSolver>(*p.design);
    p.golden = p.solver->solve_golden();
    if (is_real && (real_index++ % 2 == 1)) {
      held_out.push_back(std::move(p));
    } else {
      train_designs.push_back(std::move(p));
    }
  }
  obs::info() << "loaded " << train_designs.size() << " training designs, "
              << held_out.size() << " held out";

  core::PipelineConfig pc;
  pc.image_size = px;
  pc.epochs = args.flag_int_at_least("epochs", 5, 1);
  pc.rough_iterations = args.flag_int_at_least("iters", 3, 1);
  pc.seed = static_cast<std::uint64_t>(args.flag_int("seed", 7));
  core::IrFusionPipeline pipeline(pc);
  train::TrainHistory hist = pipeline.fit(train_designs);
  obs::info() << "trained " << hist.epoch_loss.size() << " epochs in " << hist.seconds
              << " s";
  if (!held_out.empty()) {
    train::AggregateMetrics m = pipeline.evaluate(held_out);
    obs::info() << "held-out: MAE " << m.mae_1e4() << " x1e-4 V, F1 " << m.f1
                << ", MIRDE " << m.mirde_1e4() << " x1e-4 V";
  }
  pipeline.save(out);
  obs::info() << "pipeline saved to " << out;
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string model = args.flag("model");
  if (model.empty() || args.positional.empty()) {
    throw ConfigError("analyze: --model MODEL.bin and a netlist path are required");
  }
  core::IrFusionPipeline pipeline = core::IrFusionPipeline::load(model);
  pg::PgDesign design = design_from_deck(args.positional[0], pg::DesignKind::kReal);
  core::IrFusionPipeline::Diagnostics diag = pipeline.analyze_with_diagnostics(design);
  obs::info() << "predicted worst IR drop: " << diag.prediction.max_value() * 1e3 << " mV";
  obs::verbose() << "numerical stage " << diag.solve_seconds << " s | fusion stage "
                 << diag.inference_seconds << " s (" << diag.rough_iterations
                 << " rough iterations)";
  const std::string out = args.flag("out");
  if (!out.empty()) {
    write_csv(diag.prediction, out);
    obs::info() << "IR map written to " << out;
  }
  return 0;
}

int cmd_json_check(const Args& args) {
  if (args.positional.empty()) throw ConfigError("json-check: need a file path");
  const std::string& path = args.positional[0];
  std::ifstream in(path);
  if (!in) throw Error("json-check: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  obs::parse_json(text.str());  // throws ParseError on malformed input
  obs::info() << path << ": valid JSON";
  return 0;
}

void usage() {
  std::cout << "usage: irf_cli <generate|solve|train|analyze|json-check> [options]\n"
            << "  generate --out DIR [--fake N] [--real M] [--px P] [--seed S]\n"
            << "  solve NETLIST.sp [--iters K] [--px P] [--out MAP.csv]\n"
            << "  train --designs DIR --out MODEL.bin [--epochs E] [--px P]"
               " [--iters K] [--seed S]\n"
            << "  analyze --model MODEL.bin NETLIST.sp [--out MAP.csv]\n"
            << "  json-check FILE.json\n"
            << "telemetry (any subcommand; see docs/OBSERVABILITY.md):\n"
            << "  --trace-out FILE.json   write Chrome trace-event spans for the run\n"
            << "  --metrics-out FILE.json write the metrics snapshot for the run\n"
            << "  env: IRF_TRACE, IRF_METRICS, IRF_LOG_LEVEL=quiet|normal|verbose\n";
}

/// Apply --trace-out/--metrics-out before a subcommand runs.
void begin_telemetry(const Args& args) {
  obs::init_from_env();  // IRF_TRACE / IRF_METRICS / IRF_LOG_LEVEL
  if (args.has("trace-out")) obs::set_trace_enabled(true);
  if (args.has("metrics-out")) obs::set_metrics_enabled(true);
}

/// Export the artifacts the flags asked for once the subcommand finished.
void end_telemetry(const Args& args) {
  const std::string trace_out = args.flag("trace-out");
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out);
    obs::info() << "trace written to " << trace_out;
  }
  const std::string metrics_out = args.flag("metrics-out");
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out);
    obs::info() << "metrics written to " << metrics_out;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::cout.setf(std::ios::unitbuf);
    if (argc < 2) {
      usage();
      return 2;
    }
    const std::string command = argv[1];
    const Args args = parse_args(argc, argv, 2);
    begin_telemetry(args);
    int rc = 2;
    if (command == "generate") rc = cmd_generate(args);
    else if (command == "solve") rc = cmd_solve(args);
    else if (command == "train") rc = cmd_train(args);
    else if (command == "analyze") rc = cmd_analyze(args);
    else if (command == "json-check") rc = cmd_json_check(args);
    else {
      usage();
      return 2;
    }
    end_telemetry(args);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "irf_cli: " << e.what() << "\n";
    return 1;
  }
}
