// irf_cli — command-line front end for the IR-Fusion library.
//
// Subcommands (run `irf_cli <command> --help` for the full flag table —
// help text is generated from the same tables that drive parsing):
//
//   generate     synthesize a design set and export it (ICCAD-2023 layout)
//   solve        AMG-PCG solve of one SPICE PG deck
//   train        fit the IR-Fusion pipeline and save a model checkpoint
//   analyze      one-shot end-to-end analysis with a saved model
//   serve-batch  persistent engine: batched, cached analysis of a deck set
//   serve-load   sharded router under open-loop Poisson load (N engine shards)
//   json-check   validate a JSON artifact (CI helper)
//   prom-check   validate a Prometheus text-format artifact (CI helper)
//
// Flags are kebab-case; pre-redesign spellings (--px, --iters, --fake,
// --real, train --out, analyze --model) remain as deprecated aliases.
// Every subcommand also accepts the global telemetry flags --trace-out /
// --metrics-out / --prom-out and honors IRF_TRACE / IRF_METRICS /
// IRF_LOG_LEVEL / IRF_RESIDUAL_CURVES (docs/OBSERVABILITY.md). The library
// surface used here is the public facade, src/irf.hpp (docs/API.md).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_parser.hpp"
#include "common/image_io.hpp"
#include "features/extractor.hpp"
#include "irf.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "train/iccad_io.hpp"

namespace {

using namespace irf;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Command tables: one CommandSpec per subcommand drives parsing AND --help.

const cli::CommandSpec kGenerateSpec = {
    "generate",
    "",
    "Generate a synthetic design set, golden-solve it, and export it.",
    {
        {"out", "", "DIR", "output directory (required)"},
        {"fake-designs", "fake", "N", "number of fake (easy) designs"},
        {"real-designs", "real", "M", "number of realistic (hard) designs"},
        {"pixels", "px", "P", "map resolution in pixels"},
        {"seed", "", "S", "generator seed"},
    }};

const cli::CommandSpec kSolveSpec = {
    "solve",
    "NETLIST.sp",
    "Parse a SPICE PG deck and solve it with AMG-PCG.",
    {
        {"rough-iters", "iters", "K",
         "run exactly K rough iterations (default: golden solve to 1e-10)"},
        {"pixels", "px", "P", "resolution of the rasterized IR map"},
        {"out", "", "MAP.csv", "write the bottom-layer IR map as CSV"},
    }};

const cli::CommandSpec kTrainSpec = {
    "train",
    "",
    "Fit the IR-Fusion pipeline on a design directory and save a checkpoint.",
    {
        {"designs", "", "DIR", "directory of <design>/netlist.sp decks (required)"},
        {"save-model", "out", "MODEL.irf", "checkpoint output path (required)"},
        {"epochs", "", "E", "training epochs"},
        {"pixels", "px", "P", "training image size"},
        {"rough-iters", "iters", "K", "AMG-PCG iterations for rough solutions"},
        {"seed", "", "S", "training seed"},
    }};

const cli::CommandSpec kAnalyzeSpec = {
    "analyze",
    "NETLIST.sp",
    "Restore a trained pipeline and run end-to-end analysis on one deck.",
    {
        {"load-model", "model", "MODEL.irf", "checkpoint to load (required)"},
        {"out", "", "MAP.csv", "write the predicted IR map as CSV"},
    }};

const cli::CommandSpec kServeBatchSpec = {
    "serve-batch",
    "",
    "Serve a design set through the persistent engine (cached, batched).",
    {
        {"load-model", "", "MODEL.irf",
         "checkpoint to serve; missing file or omitted flag degrades to the "
         "rough numerical map"},
        {"designs", "", "DIR", "directory of <design>/netlist.sp decks (required)"},
        {"out-dir", "", "DIR", "write one <design>.csv per served map"},
        {"batch", "", "N", "max requests fused into one model forward"},
        {"repeat", "", "R", "serve the design list R times (cache warm-up demo)"},
        {"timeout-seconds", "", "T", "per-request deadline (0 = none)"},
        {"cache-mb", "", "MB", "per-design cache budget"},
        {"prom-every-seconds", "", "T",
         "rewrite --prom-out every T seconds while serving (0 = only at exit)"},
        {"flight-out", "", "FILE.json",
         "flight-recorder dump path: auto-dumped on degradation/deadline "
         "miss/warm fallback, and written once more when serving finishes"},
    }};

const cli::CommandSpec kServeLoadSpec = {
    "serve-load",
    "",
    "Drive open-loop Poisson load through the sharded serving router.",
    {
        {"load-model", "", "MODEL.irf",
         "checkpoint to serve; missing file or omitted flag degrades to the "
         "rough numerical map"},
        {"designs", "", "DIR", "directory of <design>/netlist.sp decks (required)"},
        {"shards", "", "N", "engine shards behind the router"},
        {"rate", "", "RPS",
         "offered Poisson arrival rate in requests/second (0 = closed loop, "
         "submit as fast as backpressure allows)"},
        {"requests", "", "K", "total requests to submit"},
        {"batch", "", "N", "max requests fused into one model forward"},
        {"cache-mb", "", "MB", "per-shard per-design cache budget"},
        {"timeout-seconds", "", "T", "per-request deadline (0 = none)"},
        {"interactive-pct", "", "P", "percent of requests tagged kInteractive"},
        {"batch-pct", "", "P", "percent of requests tagged kBatch (shed first)"},
        {"steal", "", "0|1", "idle-shard work stealing (default on)"},
        {"seed", "", "S", "arrival-schedule seed"},
    }};

const cli::CommandSpec kJsonCheckSpec = {
    "json-check",
    "FILE.json",
    "Validate that FILE.json parses as JSON (exit non-zero otherwise).",
    {}};

const cli::CommandSpec kPromCheckSpec = {
    "prom-check",
    "FILE.prom",
    "Validate that FILE.prom is Prometheus exposition text (exit non-zero otherwise).",
    {}};

const std::vector<const cli::CommandSpec*>& all_commands() {
  static const std::vector<const cli::CommandSpec*> kCommands = {
      &kGenerateSpec,   &kSolveSpec,     &kTrainSpec,     &kAnalyzeSpec,
      &kServeBatchSpec, &kServeLoadSpec, &kJsonCheckSpec, &kPromCheckSpec};
  return kCommands;
}

// ---------------------------------------------------------------------------

int cmd_generate(const cli::ParsedArgs& args) {
  const std::string out = args.require("out");
  ScaleConfig cfg = make_scale_config(Scale::kCi);
  cfg.num_fake_designs = args.flag_int_at_least("fake-designs", cfg.num_fake_designs, 0);
  cfg.num_real_designs = args.flag_int_at_least("real-designs", cfg.num_real_designs, 0);
  cfg.image_size = args.flag_int_at_least("pixels", cfg.image_size, 8);
  cfg.seed = static_cast<std::uint64_t>(args.flag_int("seed", 1));
  obs::info() << "generating " << cfg.num_fake_designs << " fake + "
              << cfg.num_real_designs << " real designs at " << cfg.image_size
              << " px...";
  train::DesignSet set = train::build_design_set(cfg);
  std::vector<std::string> dirs = train::export_design_set(set, out);
  obs::info() << "wrote " << dirs.size() << " design directories under " << out;
  return 0;
}

int cmd_solve(const cli::ParsedArgs& args) {
  if (args.positional.empty()) throw ConfigError("solve: need a netlist path");
  pg::PgDesign design = load_design(args.positional[0]);
  pg::PgSolver solver(design);
  const int iters = args.flag_int_at_least("rough-iters", 0, 0);
  const int px = args.flag_int_at_least("pixels", 64, 1);
  pg::PgSolution sol = iters > 0 ? solver.solve_rough(iters) : solver.solve_golden();
  // Rasterize the bottom-layer map for the hotspot summary (and --out).
  const GridF map = features::label_map(design, sol, px);
  double worst = 0.0;
  for (double v : sol.ir_drop) worst = std::max(worst, v);
  obs::info() << design.netlist.num_nodes() << " nodes | "
              << (iters > 0 ? "rough " + std::to_string(iters) + "-iteration"
                            : "golden (" + std::to_string(sol.iterations) + " iterations)")
              << " solve | worst IR drop " << worst * 1e3 << " mV";
  obs::verbose() << "map hotspot (" << px << "x" << px << " px): " << map.max_value() * 1e3
                 << " mV | setup " << sol.setup_seconds << " s | iterate "
                 << sol.solve_seconds << " s";
  const std::string out = args.flag("out");
  if (!out.empty()) {
    write_csv(map, out);
    obs::info() << "bottom-layer IR map (" << px << "x" << px << ") written to " << out;
  }
  return 0;
}

/// Load every <dir>/*/netlist.sp; names starting with "real" are hard designs.
std::vector<std::string> deck_directories(const std::string& dir) {
  std::vector<std::string> deck_dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory() && fs::exists(entry.path() / "netlist.sp")) {
      deck_dirs.push_back(entry.path().string());
    }
  }
  std::sort(deck_dirs.begin(), deck_dirs.end());
  if (deck_dirs.empty()) throw ConfigError("no */netlist.sp under " + dir);
  return deck_dirs;
}

int cmd_train(const cli::ParsedArgs& args) {
  const std::string dir = args.require("designs");
  const std::string out = args.require("save-model");
  const int px = args.flag_int_at_least("pixels", 32, 8);

  std::vector<train::PreparedDesign> train_designs;
  std::vector<train::PreparedDesign> held_out;
  int real_index = 0;
  for (const std::string& d : deck_directories(dir)) {
    const std::string name = fs::path(d).filename().string();
    const bool is_real = name.rfind("real", 0) == 0;
    // Any design named real_<i> with odd i is held out for validation.
    train::PreparedDesign p;
    p.design = std::make_unique<pg::PgDesign>(
        load_design((fs::path(d) / "netlist.sp").string(),
                    is_real ? pg::DesignKind::kReal : pg::DesignKind::kFake));
    p.solver = std::make_unique<pg::PgSolver>(*p.design);
    p.golden = p.solver->solve_golden();
    if (is_real && (real_index++ % 2 == 1)) {
      held_out.push_back(std::move(p));
    } else {
      train_designs.push_back(std::move(p));
    }
  }
  obs::info() << "loaded " << train_designs.size() << " training designs, "
              << held_out.size() << " held out";

  PipelineConfig pc;
  pc.image_size = px;
  pc.epochs = args.flag_int_at_least("epochs", 5, 1);
  pc.rough_iterations = args.flag_int_at_least("rough-iters", 3, 1);
  pc.seed = static_cast<std::uint64_t>(args.flag_int("seed", 7));
  IrFusionPipeline pipeline(pc);
  train::TrainHistory hist = pipeline.fit(train_designs);
  obs::info() << "trained " << hist.epoch_loss.size() << " epochs in " << hist.seconds
              << " s";
  if (!held_out.empty()) {
    train::AggregateMetrics m = pipeline.evaluate(held_out);
    obs::info() << "held-out: MAE " << m.mae_1e4() << " x1e-4 V, F1 " << m.f1
                << ", MIRDE " << m.mirde_1e4() << " x1e-4 V";
  }
  save_checkpoint(pipeline, out);
  obs::info() << "model checkpoint saved to " << out;
  return 0;
}

int cmd_analyze(const cli::ParsedArgs& args) {
  const std::string model = args.require("load-model");
  if (args.positional.empty()) throw ConfigError("analyze: need a netlist path");
  IrFusionPipeline pipeline = load_checkpoint(model);
  pg::PgDesign design = load_design(args.positional[0]);
  IrFusionPipeline::Diagnostics diag = pipeline.analyze_with_diagnostics(design);
  obs::info() << "predicted worst IR drop: " << diag.prediction.max_value() * 1e3 << " mV";
  obs::verbose() << "numerical stage " << diag.solve_seconds << " s | fusion stage "
                 << diag.inference_seconds << " s (" << diag.rough_iterations
                 << " rough iterations)";
  const std::string out = args.flag("out");
  if (!out.empty()) {
    write_csv(diag.prediction, out);
    obs::info() << "IR map written to " << out;
  }
  return 0;
}

int cmd_serve_batch(const cli::ParsedArgs& args) {
  const std::string dir = args.require("designs");
  EngineOptions opts;
  opts.max_batch = args.flag_int_at_least("batch", 8, 1);
  opts.queue_capacity = std::max(64, opts.max_batch * 4);
  opts.cache_budget_bytes =
      static_cast<std::size_t>(args.flag_int_at_least("cache-mb", 256, 1)) << 20;
  opts.default_timeout_seconds = args.flag_double("timeout-seconds", 0.0);
  opts.flight_dump_path = args.flag("flight-out");
  const int repeat = args.flag_int_at_least("repeat", 1, 1);

  // Periodic Prometheus snapshots while serving: a scrape-file stand-in for
  // a pull endpoint (node-exporter textfile-collector style).
  const double prom_every = args.flag_double("prom-every-seconds", 0.0);
  const std::string prom_path = args.flag("prom-out");
  if (prom_every > 0.0 && prom_path.empty()) {
    throw ConfigError("serve-batch: --prom-every-seconds needs --prom-out");
  }
  std::atomic<bool> prom_done{false};
  std::thread prom_thread;
  if (prom_every > 0.0) {
    prom_thread = std::thread([&prom_done, prom_every, prom_path] {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(prom_every);
      while (!prom_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (std::chrono::steady_clock::now() < next) continue;
        try {
          obs::export_prometheus(prom_path);
        } catch (const std::exception& e) {
          obs::info() << "serve-batch: periodic prometheus snapshot failed: "
                      << e.what();
        }
        next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(prom_every));
      }
    });
  }
  struct PromThreadJoiner {
    std::atomic<bool>& done;
    std::thread& thread;
    ~PromThreadJoiner() {
      done.store(true, std::memory_order_relaxed);
      if (thread.joinable()) thread.join();
    }
  } prom_joiner{prom_done, prom_thread};

  const std::string model = args.flag("load-model");
  std::unique_ptr<Engine> engine =
      model.empty() ? std::make_unique<Engine>(opts)
                    : Engine::from_checkpoint(model, opts);
  if (!engine->has_model()) {
    obs::info() << "serving without a model: every map is the rough numerical "
                   "fallback (degraded)";
  }

  std::vector<std::shared_ptr<const pg::PgDesign>> designs;
  for (const std::string& d : deck_directories(dir)) {
    designs.push_back(std::make_shared<pg::PgDesign>(
        load_design((fs::path(d) / "netlist.sp").string())));
  }
  obs::info() << "serving " << designs.size() << " designs x " << repeat
              << " rounds (batch " << opts.max_batch << ")...";

  obs::ScopedSpan serve_span("serve_batch_cmd", "cli");
  std::vector<Engine::Ticket> tickets;
  tickets.reserve(designs.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (const auto& design : designs) {
      AnalysisRequest request;
      request.design = design;
      tickets.push_back(engine->submit(std::move(request)));
    }
  }

  const std::string out_dir = args.flag("out-dir");
  if (!out_dir.empty()) fs::create_directories(out_dir);
  int ok = 0, degraded = 0, other = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    AnalysisResult r = tickets[i].result.get();
    if (r.ok()) ++ok;
    else if (r.status == ResultStatus::kDegraded) ++degraded;
    else ++other;
    // Keep the map of each design's final round.
    if (!out_dir.empty() && r.has_map() && i + designs.size() >= tickets.size()) {
      write_csv(r.ir_drop, (fs::path(out_dir) / (r.design_name + ".csv")).string());
    }
    if (!r.has_map()) {
      obs::info() << r.design_name << ": " << status_name(r.status)
                  << (r.error.empty() ? "" : " (" + r.error + ")");
    }
  }
  const double seconds = serve_span.seconds();
  const EngineStats stats = engine->stats();
  obs::info() << "served " << tickets.size() << " requests in " << seconds << " s ("
              << static_cast<double>(tickets.size()) / std::max(seconds, 1e-9)
              << " req/s): " << ok << " ok, " << degraded << " degraded, " << other
              << " other";
  obs::info() << "cache: " << stats.cache_hits << " hits, " << stats.cache_misses
              << " misses, " << stats.cache_evictions << " evictions, "
              << stats.cache_bytes / (1024.0 * 1024.0) << " MiB resident";
  if (!out_dir.empty()) obs::info() << "maps written to " << out_dir;
  const std::string flight_out = args.flag("flight-out");
  if (!flight_out.empty()) {
    engine->dump_flight_recorder(flight_out);
    obs::info() << "flight-recorder dump written to " << flight_out;
  }
  return other == 0 ? 0 : 1;
}

int cmd_serve_load(const cli::ParsedArgs& args) {
  const std::string dir = args.require("designs");
  RouterOptions ropts;
  ropts.num_shards = args.flag_int_at_least("shards", 2, 1);
  ropts.enable_stealing = args.flag_int("steal", 1) != 0;
  ropts.engine.max_batch = args.flag_int_at_least("batch", 8, 1);
  ropts.engine.queue_capacity = std::max(64, ropts.engine.max_batch * 4);
  ropts.engine.cache_budget_bytes =
      static_cast<std::size_t>(args.flag_int_at_least("cache-mb", 256, 1)) << 20;
  ropts.engine.default_timeout_seconds = args.flag_double("timeout-seconds", 0.0);

  const std::string model = args.flag("load-model");
  std::unique_ptr<Router> router = model.empty()
                                       ? std::make_unique<Router>(ropts)
                                       : Router::from_checkpoint(model, ropts);
  if (!router->has_model()) {
    obs::info() << "serving without a model: every map is the rough numerical "
                   "fallback (degraded)";
  }

  std::vector<std::shared_ptr<const pg::PgDesign>> designs;
  for (const std::string& d : deck_directories(dir)) {
    designs.push_back(std::make_shared<pg::PgDesign>(
        load_design((fs::path(d) / "netlist.sp").string())));
  }
  if (designs.empty()) throw ConfigError("serve-load: no designs under " + dir);

  const int requests = args.flag_int_at_least("requests", 64, 1);
  const double rate = args.flag_double("rate", 0.0);
  const int interactive_pct = args.flag_int_at_least("interactive-pct", 10, 0);
  const int batch_pct = args.flag_int_at_least("batch-pct", 10, 0);
  std::mt19937_64 rng(static_cast<std::uint64_t>(args.flag_int("seed", 1)));
  std::exponential_distribution<double> interarrival(rate > 0.0 ? rate : 1.0);
  std::uniform_int_distribution<int> pct(0, 99);

  obs::info() << "offering " << requests << " requests over " << designs.size()
              << " designs to " << ropts.num_shards << " shard(s)"
              << (rate > 0.0 ? " at " + std::to_string(rate) + " req/s (Poisson)"
                             : " closed-loop");

  // Open loop: each request has a scheduled arrival; latency is measured
  // from that schedule (not from the possibly backpressure-delayed submit),
  // so queueing delay is never hidden by a stalled submitter.
  const auto start = std::chrono::steady_clock::now();
  std::vector<Engine::Ticket> tickets;
  std::vector<double> submit_delay(static_cast<std::size_t>(requests), 0.0);
  tickets.reserve(static_cast<std::size_t>(requests));
  double scheduled = 0.0;
  for (int i = 0; i < requests; ++i) {
    if (rate > 0.0) {
      scheduled += interarrival(rng);
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(scheduled)));
    }
    AnalysisRequest request;
    request.design = designs[static_cast<std::size_t>(i) % designs.size()];
    const int p = pct(rng);
    request.priority = p < interactive_pct ? Priority::kInteractive
                       : p < interactive_pct + batch_pct ? Priority::kBatch
                                                         : Priority::kNormal;
    tickets.push_back(router->submit(std::move(request)));
    submit_delay[static_cast<std::size_t>(i)] = std::max(
        0.0, std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                     .count() -
                 scheduled);
  }

  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  int ok = 0, degraded = 0, shed = 0, other = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    AnalysisResult r = tickets[i].result.get();
    if (r.ok()) ++ok;
    else if (r.status == ResultStatus::kDegraded) ++degraded;
    else if (r.status == ResultStatus::kShed) ++shed;
    else ++other;
    if (r.has_map()) {
      latencies.push_back(submit_delay[i] + r.stages.total_seconds);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::sort(latencies.begin(), latencies.end());
  const auto quantile = [&](double q) {
    if (latencies.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(idx, latencies.size() - 1)];
  };
  const RouterStats rs = router->router_stats();
  obs::info() << "served " << ok + degraded << "/" << requests << " maps in " << wall
              << " s (" << static_cast<double>(ok + degraded) / std::max(wall, 1e-9)
              << " req/s): " << ok << " ok, " << degraded << " degraded, " << shed
              << " shed, " << other << " other";
  obs::info() << "latency from scheduled arrival: p50 " << quantile(0.5) * 1e3
              << " ms, p99 " << quantile(0.99) * 1e3 << " ms";
  obs::info() << "router: " << rs.steals << " steals (" << rs.stolen_requests
              << " requests moved), " << rs.total.shed << " shed, "
              << rs.total.cache_hits << " cache hits / " << rs.total.cache_misses
              << " misses";
  for (std::size_t i = 0; i < rs.shards.size(); ++i) {
    const EngineStats& s = rs.shards[i];
    obs::verbose() << "  shard " << i << ": " << s.submitted << " submitted, "
                   << s.completed << " completed, " << s.cache_hits << " hits, "
                   << s.cache_evictions << " evictions";
  }
  return other == 0 ? 0 : 1;
}

int cmd_json_check(const cli::ParsedArgs& args) {
  if (args.positional.empty()) throw ConfigError("json-check: need a file path");
  const std::string& path = args.positional[0];
  std::ifstream in(path);
  if (!in) throw Error("json-check: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  obs::parse_json(text.str());  // throws ParseError on malformed input
  obs::info() << path << ": valid JSON";
  return 0;
}

int cmd_prom_check(const cli::ParsedArgs& args) {
  if (args.positional.empty()) throw ConfigError("prom-check: need a file path");
  const std::string& path = args.positional[0];
  std::ifstream in(path);
  if (!in) throw Error("prom-check: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  // Throws ParseError (with a line number) on the first malformed line.
  const std::size_t samples = obs::check_prometheus_text(text.str());
  if (samples == 0) throw ParseError("prom-check: " + path + " has no sample lines");
  obs::info() << path << ": valid Prometheus exposition text (" << samples
              << " samples)";
  return 0;
}

void usage() {
  std::cout << "usage: irf_cli <command> [options]\n";
  for (const cli::CommandSpec* spec : all_commands()) {
    std::cout << "  " << spec->name;
    for (std::size_t pad = spec->name.size(); pad < 13; ++pad) std::cout << ' ';
    std::cout << spec->summary << "\n";
  }
  std::cout << "run 'irf_cli <command> --help' for the per-command flag table\n"
            << "telemetry (any subcommand; see docs/OBSERVABILITY.md):\n"
            << "  --trace-out FILE.json   write Chrome trace-event spans for the run\n"
            << "  --metrics-out FILE.json write the metrics snapshot for the run\n"
            << "  --prom-out FILE.prom    write the metrics snapshot as Prometheus text\n"
            << "  env: IRF_TRACE, IRF_METRICS, IRF_LOG_LEVEL=quiet|normal|verbose,\n"
            << "       IRF_RESIDUAL_CURVES=1 (residual curves on solve spans)\n";
}

/// Apply --trace-out/--metrics-out/--prom-out before a subcommand runs.
void begin_telemetry(const cli::ParsedArgs& args) {
  obs::init_from_env();  // IRF_TRACE / IRF_METRICS / IRF_LOG_LEVEL / curves
  if (args.has("trace-out")) obs::set_trace_enabled(true);
  if (args.has("metrics-out") || args.has("prom-out")) obs::set_metrics_enabled(true);
}

/// Export the artifacts the flags asked for once the subcommand finished.
void end_telemetry(const cli::ParsedArgs& args) {
  const std::string trace_out = args.flag("trace-out");
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out);
    obs::info() << "trace written to " << trace_out;
  }
  const std::string metrics_out = args.flag("metrics-out");
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out);
    obs::info() << "metrics written to " << metrics_out;
  }
  const std::string prom_out = args.flag("prom-out");
  if (!prom_out.empty()) {
    obs::export_prometheus(prom_out);
    obs::info() << "prometheus metrics written to " << prom_out;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::cout.setf(std::ios::unitbuf);
    if (argc < 2) {
      usage();
      return 2;
    }
    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
      usage();
      return 0;
    }
    const cli::CommandSpec* spec = nullptr;
    for (const cli::CommandSpec* s : all_commands()) {
      if (s->name == command) spec = s;
    }
    if (spec == nullptr) {
      usage();
      return 2;
    }
    const cli::ParsedArgs args = parse_command_line(*spec, argc, argv, 2);
    if (args.has("help")) {
      std::cout << cli::help_text(*spec);
      return 0;
    }
    begin_telemetry(args);
    for (const std::string& note : args.deprecations()) {
      obs::verbose() << "irf_cli: " << note;
    }
    int rc = 2;
    if (spec == &kGenerateSpec) rc = cmd_generate(args);
    else if (spec == &kSolveSpec) rc = cmd_solve(args);
    else if (spec == &kTrainSpec) rc = cmd_train(args);
    else if (spec == &kAnalyzeSpec) rc = cmd_analyze(args);
    else if (spec == &kServeBatchSpec) rc = cmd_serve_batch(args);
    else if (spec == &kServeLoadSpec) rc = cmd_serve_load(args);
    else if (spec == &kJsonCheckSpec) rc = cmd_json_check(args);
    else if (spec == &kPromCheckSpec) rc = cmd_prom_check(args);
    end_telemetry(args);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "irf_cli: " << e.what() << "\n";
    return 1;
  }
}
