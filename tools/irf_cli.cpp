// irf_cli — command-line front end for the IR-Fusion library.
//
//   irf_cli generate --out DIR [--fake N] [--real M] [--px P] [--seed S]
//       Generate a synthetic design set, golden-solve it, and export it in
//       the ICCAD-2023 layout (netlist.sp + image CSVs per design).
//
//   irf_cli solve NETLIST.sp [--iters K] [--px P] [--out MAP.csv]
//       Parse a SPICE PG deck and solve it with AMG-PCG. Without --iters the
//       solve runs to 1e-10 (golden); with --iters it runs exactly K rough
//       iterations. Optionally writes the bottom-layer IR map as CSV.
//
//   irf_cli train --designs DIR --out MODEL.bin [--epochs E] [--px P]
//                 [--iters K] [--seed S]
//       Load every <DIR>/*/netlist.sp (directory names starting with "real"
//       are treated as hard designs; any design named real_<i> with odd i is
//       held out for validation), fit the IR-Fusion pipeline and save it.
//
//   irf_cli analyze --model MODEL.bin NETLIST.sp [--out MAP.csv]
//       Restore a trained pipeline and run end-to-end analysis on a deck.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/image_io.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "features/extractor.hpp"
#include "pg/generator.hpp"
#include "pg/solve.hpp"
#include "spice/parser.hpp"
#include "train/iccad_io.hpp"

namespace {

using namespace irf;
namespace fs = std::filesystem;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& name, const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  int flag_int(const std::string& name, int fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stoi(it->second);
  }
  bool has(const std::string& name) const { return flags.count(name) > 0; }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      if (i + 1 >= argc) throw ConfigError("flag --" + key + " needs a value");
      args.flags[key] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// Build a PgDesign from a parsed deck, inferring extents from coordinates.
pg::PgDesign design_from_deck(const std::string& path, pg::DesignKind kind) {
  pg::PgDesign design;
  design.name = fs::path(path).parent_path().filename().string();
  if (design.name.empty()) design.name = fs::path(path).stem().string();
  design.kind = kind;
  design.netlist = spice::parse_file(path);
  design.vdd = design.netlist.voltage_sources().front().volts;
  std::int64_t w = 0, h = 0;
  for (spice::NodeId id = 0; id < design.netlist.num_nodes(); ++id) {
    if (const auto& c = design.netlist.node_coords(id)) {
      w = std::max(w, c->x_nm);
      h = std::max(h, c->y_nm);
    }
  }
  if (w == 0 || h == 0) {
    throw ParseError("deck " + path + " has no coordinate-named nodes");
  }
  design.width_nm = w;
  design.height_nm = h;
  return design;
}

int cmd_generate(const Args& args) {
  const std::string out = args.flag("out");
  if (out.empty()) throw ConfigError("generate: --out DIR is required");
  ScaleConfig cfg = make_scale_config(Scale::kCi);
  cfg.num_fake_designs = args.flag_int("fake", cfg.num_fake_designs);
  cfg.num_real_designs = args.flag_int("real", cfg.num_real_designs);
  cfg.image_size = args.flag_int("px", cfg.image_size);
  cfg.seed = static_cast<std::uint64_t>(args.flag_int("seed", 1));
  std::cout << "generating " << cfg.num_fake_designs << " fake + "
            << cfg.num_real_designs << " real designs at " << cfg.image_size
            << " px...\n";
  train::DesignSet set = train::build_design_set(cfg);
  std::vector<std::string> dirs = train::export_design_set(set, out);
  std::cout << "wrote " << dirs.size() << " design directories under " << out << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  if (args.positional.empty()) throw ConfigError("solve: need a netlist path");
  pg::PgDesign design = design_from_deck(args.positional[0], pg::DesignKind::kReal);
  pg::PgSolver solver(design);
  const int iters = args.flag_int("iters", 0);
  pg::PgSolution sol = iters > 0 ? solver.solve_rough(iters) : solver.solve_golden();
  double worst = 0.0;
  for (double v : sol.ir_drop) worst = std::max(worst, v);
  std::cout << design.netlist.num_nodes() << " nodes | "
            << (iters > 0 ? "rough " + std::to_string(iters) + "-iteration"
                          : "golden (" + std::to_string(sol.iterations) + " iterations)")
            << " solve | worst IR drop " << worst * 1e3 << " mV\n";
  const std::string out = args.flag("out");
  if (!out.empty()) {
    const int px = args.flag_int("px", 64);
    write_csv(features::label_map(design, sol, px), out);
    std::cout << "bottom-layer IR map (" << px << "x" << px << ") written to " << out
              << "\n";
  }
  return 0;
}

int cmd_train(const Args& args) {
  const std::string dir = args.flag("designs");
  const std::string out = args.flag("out");
  if (dir.empty() || out.empty()) {
    throw ConfigError("train: --designs DIR and --out MODEL.bin are required");
  }
  const int px = args.flag_int("px", 32);

  std::vector<std::string> deck_dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory() && fs::exists(entry.path() / "netlist.sp")) {
      deck_dirs.push_back(entry.path().string());
    }
  }
  std::sort(deck_dirs.begin(), deck_dirs.end());
  if (deck_dirs.empty()) throw ConfigError("train: no */netlist.sp under " + dir);

  std::vector<train::PreparedDesign> train_designs;
  std::vector<train::PreparedDesign> held_out;
  int real_index = 0;
  for (const std::string& d : deck_dirs) {
    const std::string name = fs::path(d).filename().string();
    const bool is_real = name.rfind("real", 0) == 0;
    train::PreparedDesign p;
    p.design = std::make_unique<pg::PgDesign>(design_from_deck(
        (fs::path(d) / "netlist.sp").string(),
        is_real ? pg::DesignKind::kReal : pg::DesignKind::kFake));
    p.solver = std::make_unique<pg::PgSolver>(*p.design);
    p.golden = p.solver->solve_golden();
    if (is_real && (real_index++ % 2 == 1)) {
      held_out.push_back(std::move(p));
    } else {
      train_designs.push_back(std::move(p));
    }
  }
  std::cout << "loaded " << train_designs.size() << " training designs, "
            << held_out.size() << " held out\n";

  core::PipelineConfig pc;
  pc.image_size = px;
  pc.epochs = args.flag_int("epochs", 5);
  pc.rough_iterations = args.flag_int("iters", 3);
  pc.seed = static_cast<std::uint64_t>(args.flag_int("seed", 7));
  core::IrFusionPipeline pipeline(pc);
  train::TrainHistory hist = pipeline.fit(train_designs);
  std::cout << "trained " << hist.epoch_loss.size() << " epochs in " << hist.seconds
            << " s\n";
  if (!held_out.empty()) {
    train::AggregateMetrics m = pipeline.evaluate(held_out);
    std::cout << "held-out: MAE " << m.mae_1e4() << " x1e-4 V, F1 " << m.f1
              << ", MIRDE " << m.mirde_1e4() << " x1e-4 V\n";
  }
  pipeline.save(out);
  std::cout << "pipeline saved to " << out << "\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string model = args.flag("model");
  if (model.empty() || args.positional.empty()) {
    throw ConfigError("analyze: --model MODEL.bin and a netlist path are required");
  }
  core::IrFusionPipeline pipeline = core::IrFusionPipeline::load(model);
  pg::PgDesign design = design_from_deck(args.positional[0], pg::DesignKind::kReal);
  GridF map = pipeline.analyze(design);
  std::cout << "predicted worst IR drop: " << map.max_value() * 1e3 << " mV\n";
  const std::string out = args.flag("out");
  if (!out.empty()) {
    write_csv(map, out);
    std::cout << "IR map written to " << out << "\n";
  }
  return 0;
}

void usage() {
  std::cout << "usage: irf_cli <generate|solve|train|analyze> [options]\n"
            << "  generate --out DIR [--fake N] [--real M] [--px P] [--seed S]\n"
            << "  solve NETLIST.sp [--iters K] [--px P] [--out MAP.csv]\n"
            << "  train --designs DIR --out MODEL.bin [--epochs E] [--px P]"
               " [--iters K] [--seed S]\n"
            << "  analyze --model MODEL.bin NETLIST.sp [--out MAP.csv]\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::cout.setf(std::ios::unitbuf);
    if (argc < 2) {
      usage();
      return 2;
    }
    const std::string command = argv[1];
    const Args args = parse_args(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "train") return cmd_train(args);
    if (command == "analyze") return cmd_analyze(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "irf_cli: " << e.what() << "\n";
    return 1;
  }
}
