// irf_lint — project-rule linter, run as a ctest so violations fail tier-1.
//
//   irf_lint <dir-or-file>...            lint every .hpp/.cpp under the paths
//                                        (skipping build*/, .git/, lint_fixtures/);
//                                        exit 0 iff no violations
//   irf_lint --expect-violations <...>   invert: exit 0 iff violations WERE
//                                        found (the seeded-fixture self-test,
//                                        proving the rules actually fire)
//
// The rule table and the scanning engine live in src/check/lint.{hpp,cpp};
// docs/CORRECTNESS.md describes each rule and how to add one.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "lint_fixtures" || name.rfind("build", 0) == 0;
}

std::vector<fs::path> collect(const std::vector<std::string>& roots, bool fixtures) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      std::cerr << "irf_lint: no such path: " << root << "\n";
      continue;
    }
    auto it = fs::recursive_directory_iterator(p);
    for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
      if (it->is_directory()) {
        // Fixture mode lints exactly the seeded-violation tree; normal mode
        // must never see it (its files are violations on purpose).
        if (skipped_dir(it->path()) && !(fixtures && it->path().filename() == "lint_fixtures")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  bool expect_violations = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect-violations") {
      expect_violations = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: irf_lint [--expect-violations] <dir-or-file>...\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "irf_lint: no paths given (try --help)\n";
    return 2;
  }

  irf::check::lint::Linter linter;
  for (const fs::path& file : collect(roots, expect_violations)) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "irf_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    linter.add_file(file.generic_string(), content.str());
  }
  linter.finish();

  for (const auto& issue : linter.issues()) std::cout << issue.str() << "\n";
  std::cout << "irf_lint: " << linter.issues().size() << " violation(s) in "
            << linter.files_scanned() << " file(s)\n";
  if (linter.files_scanned() == 0) {
    std::cerr << "irf_lint: nothing scanned\n";
    return 2;
  }
  if (expect_violations) {
    if (linter.issues().empty()) {
      std::cerr << "irf_lint: expected the seeded fixtures to violate rules, "
                   "but none fired\n";
      return 1;
    }
    return 0;
  }
  return linter.issues().empty() ? 0 : 1;
}
